// Package gateway is sppgw's core: one HTTP front-end that makes a
// fleet of sppd backends look like a single daemon. Results are
// content-addressed (experiments.Spec.Key is a SHA-256 of the canonical
// configuration), so the keyspace shards trivially: a consistent-hash
// ring with virtual nodes maps every key to exactly one owning backend,
// submit/status/result/cancel route to that owner, list fans out, and
// /metrics serves a merged per-backend + cluster-total view. Membership
// is dynamic — backends join with heartbeats and are evicted on silence
// or connection failure, after which their keys re-hash onto the
// survivors. Because every job is a pure re-runnable function of its
// spec, a re-hash is always safe; the peer endpoint makes it cheap, by
// letting the new owner copy the previous owner's store entry instead
// of recomputing.
//
// The package is deliberately simulator-independent (enforced by the
// simlint deps analyzer): it moves opaque bodies keyed by opaque hex
// strings, and the one piece of spec knowledge it needs — turning a
// submit body into a key — is injected by cmd/sppgw as Config.SubmitKey.
package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per backend when Config
// leaves VNodes zero. More virtual nodes smooth the key distribution
// (the expected per-backend share concentrates around 1/N) at a small
// memory and rebuild cost; 64 keeps the imbalance within a few percent
// for the cluster sizes sppgw targets.
const DefaultVNodes = 64

// Ring is a consistent-hash ring mapping content keys to backend ids.
// Each backend contributes vnodes points (SHA-256 of "id#v"), a key is
// owned by the first point at or clockwise after its own hash, and
// membership changes move only the keys adjacent to the changed points
// — joining or losing one of N backends re-homes about 1/N of the
// keyspace and leaves every other key's owner untouched. The zero
// value is not usable; create with NewRing. Ring is not safe for
// concurrent use (Gateway guards it with its own lock).
type Ring struct {
	vnodes  int
	points  []point // sorted by (hash, id)
	members map[string]bool
}

// point is one virtual node: the hash position and its backend.
type point struct {
	hash uint64
	id   string
}

// NewRing returns an empty ring with the given virtual-node count per
// backend (<= 0 selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// ringHash positions a label on the ring: the first 8 bytes of its
// SHA-256, so placement is deterministic across processes, platforms,
// and Go releases — the same property Spec.Key already leans on.
func ringHash(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// vnodeLabel names one virtual node. The '#' separator cannot appear in
// the hex keys the ring serves, so a key can never land exactly on a
// label and distinct (id, v) pairs can never collide textually.
func vnodeLabel(id string, v int) string {
	return id + "#" + strconv.Itoa(v)
}

// Add inserts a backend's virtual nodes; adding a present member is a
// no-op. Points sort by (hash, id) so a hash collision between two
// backends' virtual nodes still yields one deterministic order.
func (r *Ring) Add(id string) {
	if r.members[id] {
		return
	}
	r.members[id] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, point{ringHash(vnodeLabel(id, v)), id})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
}

// Remove deletes a backend's virtual nodes; removing an absent member
// is a no-op. Only keys the member owned re-home (to their next point
// clockwise); every other assignment is untouched.
func (r *Ring) Remove(id string) {
	if !r.members[id] {
		return
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner reports the backend owning key: the first virtual node at or
// clockwise after the key's hash, wrapping at the top. False on an
// empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id, true
}

// Owners reports every member in the ring's preference order for key:
// the current owner first, then each further distinct backend in
// clockwise point order. The order doubles as the peer-fetch probe
// order — when a key re-homes after a join, the joining backend's
// successor in this list is exactly the key's previous owner, so the
// warm copy is found on the first probe.
func (r *Ring) Owners(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.members))
	out := make([]string, 0, len(r.members))
	for n := 0; n < len(r.points) && len(out) < len(r.members); n++ {
		p := r.points[(start+n)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}

// Members reports the backend ids on the ring, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for id := range r.members {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of member backends.
func (r *Ring) Len() int { return len(r.members) }
