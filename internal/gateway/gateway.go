package gateway

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes the gateway.
type Config struct {
	// VNodes is the virtual-node count per backend on the consistent-
	// hash ring (<= 0 selects DefaultVNodes).
	VNodes int
	// HeartbeatTTL is how long a backend may stay silent before it is
	// evicted from the ring: sppd heartbeats once per -heartbeat
	// interval, so the TTL should cover a few missed beats. Eviction is
	// lazy (checked on request handling), and a connection failure
	// while proxying evicts immediately regardless of the TTL. Default
	// 5s.
	HeartbeatTTL time.Duration
	// SubmitKey extracts the content address from a POST /v1/jobs body
	// — the routing key. cmd/sppgw injects service.SubmitKey here; the
	// indirection keeps this package free of sim-core imports (the
	// simlint deps ban) while guaranteeing the gateway and every
	// backend agree byte-for-byte on how a body hashes. Required for
	// submit routing; a gateway without it answers submits 500.
	SubmitKey func(body []byte) (string, error)
	// Client issues every backend-bound request (proxying, peer
	// probing, metrics scraping). Default: a client with a 60s timeout
	// — long enough for a result fetch of a paper-scale run, short
	// enough that a hung backend cannot wedge the gateway forever.
	Client *http.Client
	// Now supplies the wall-clock timestamps behind heartbeat ages and
	// the uptime metric. Injecting it keeps the membership state
	// machine clock-free (the wall clock enters at exactly one
	// annotated spot in withDefaults) and lets tests drive TTL
	// evictions deterministically. Default time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.HeartbeatTTL <= 0 {
		c.HeartbeatTTL = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if c.Now == nil {
		//simlint:allow determinism the gateway's single wall-clock source: heartbeat ages and uptime, never routing decisions for a fixed membership
		c.Now = time.Now
	}
	return c
}

// backend is one registered sppd.
type backend struct {
	id       string
	addr     string // base URL, e.g. http://127.0.0.1:8177
	lastSeen time.Time
}

// Gateway owns the ring, the membership table, and the proxy counters.
// Create with New; it is ready (Handler serves) on return. All methods
// are safe for concurrent use.
type Gateway struct {
	cfg Config

	mu       sync.Mutex
	backends map[string]*backend
	ring     *Ring

	started time.Time

	// cumulative counters (atomics: read by /metrics without the lock)
	requests     atomic.Int64 // every API request handled
	submits      atomic.Int64 // POST /v1/jobs accepted for routing
	badSubmits   atomic.Int64 // POST /v1/jobs rejected before routing (400)
	proxyRetries atomic.Int64 // forwards re-routed after a backend failure
	evictions    atomic.Int64 // backends removed (TTL, conn failure, or leave)
	unavailable  atomic.Int64 // 503s served because no backend was live
	peerRequests atomic.Int64 // GET /v1/peer lookups received
	peerHits     atomic.Int64 // peer lookups that found a valid entry
	// peerProbeRetries counts peer-probe passes rerun after a transport
	// failure mid-pass (a candidate evicted between ring lookup and its
	// probe) — the stale-candidates window the fault drill exercises.
	peerProbeRetries atomic.Int64
	heartbeats       atomic.Int64 // join/heartbeat posts processed
}

// New returns a gateway with an empty ring; backends join via
// POST /v1/backends (sppd -join does this for you).
func New(cfg Config) *Gateway {
	cfg = cfg.withDefaults()
	return &Gateway{
		cfg:      cfg,
		backends: make(map[string]*backend),
		ring:     NewRing(cfg.VNodes),
		started:  cfg.Now(),
	}
}

// Register adds or refreshes a backend (join and heartbeat are the
// same operation: both stamp lastSeen). A re-registration with a new
// address updates it in place — same ring position, new wire target.
// It reports the live membership size after the registration.
func (g *Gateway) Register(id, addr string) int {
	g.heartbeats.Add(1)
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.backends[id]
	if !ok {
		b = &backend{id: id}
		g.backends[id] = b
		g.ring.Add(id)
	}
	b.addr = addr
	b.lastSeen = g.cfg.Now()
	return len(g.backends)
}

// Deregister removes a backend immediately (the graceful-shutdown
// path: sppd's Joiner calls DELETE /v1/backends/{id} on Close, so its
// keys re-hash without waiting out the TTL). Unknown ids are a no-op.
func (g *Gateway) Deregister(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.evictLocked(id)
}

// evictLocked removes id from the table and the ring, counting the
// eviction. Callers hold g.mu.
func (g *Gateway) evictLocked(id string) {
	if _, ok := g.backends[id]; !ok {
		return
	}
	delete(g.backends, id)
	g.ring.Remove(id)
	g.evictions.Add(1)
}

// evict removes a backend discovered dead mid-request (connection
// failure while proxying): its keys re-hash onto the survivors, which
// is always safe — jobs are pure and re-runnable — and usually warm,
// via the peer-fetch path.
func (g *Gateway) evict(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.evictLocked(id)
}

// prune evicts every backend whose heartbeat is older than the TTL.
// Called lazily at the top of request handling, so membership decays
// without a background goroutine (and deterministically under an
// injected clock).
func (g *Gateway) prune() {
	cutoff := g.cfg.Now().Add(-g.cfg.HeartbeatTTL)
	g.mu.Lock()
	defer g.mu.Unlock()
	for id, b := range g.backends {
		if b.lastSeen.Before(cutoff) {
			g.evictLocked(id)
		}
	}
}

// ownerFor resolves key's current owner, pruning stale members first.
func (g *Gateway) ownerFor(key string) (backend, bool) {
	g.prune()
	g.mu.Lock()
	defer g.mu.Unlock()
	id, ok := g.ring.Owner(key)
	if !ok {
		return backend{}, false
	}
	return *g.backends[id], true
}

// candidatesFor resolves key's peer-probe order: every live backend in
// ring preference order, skipping exclude (the asking backend itself).
func (g *Gateway) candidatesFor(key, exclude string) []backend {
	g.prune()
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []backend
	for _, id := range g.ring.Owners(key) {
		if id != exclude {
			out = append(out, *g.backends[id])
		}
	}
	return out
}

// BackendView is the wire representation of one registered backend.
type BackendView struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// AgeSeconds is how long ago the last heartbeat arrived.
	AgeSeconds float64 `json:"ageSeconds"`
}

// Backends snapshots the live membership, sorted by id, pruning
// TTL-stale members first.
func (g *Gateway) Backends() []BackendView {
	g.prune()
	now := g.cfg.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]BackendView, 0, len(g.backends))
	for _, b := range g.backends {
		out = append(out, BackendView{ID: b.id, Addr: b.addr, AgeSeconds: now.Sub(b.lastSeen).Seconds()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
