package gateway

import (
	"fmt"
	"testing"
)

// TestRingGoldenAssignment pins the exact key→backend mapping for a
// fixed membership. The ring hashes with SHA-256, so this table must
// hold on every platform and Go release — if it ever changes, rolling
// upgrades would silently re-home the whole keyspace.
func TestRingGoldenAssignment(t *testing.T) {
	r := NewRing(64)
	for _, id := range []string{"alpha", "beta", "gamma"} {
		r.Add(id)
	}
	golden := []struct{ key, owner string }{
		{"0000000000000000000000000000000000000000000000000000000000000000", "alpha"},
		{"0000000000000000000000000000000000000000000000000000000000000001", "alpha"},
		{"0000000000000000000000000000000000000000000000000000000000000002", "beta"},
		{"0000000000000000000000000000000000000000000000000000000000000003", "gamma"},
		{"0000000000000000000000000000000000000000000000000000000000000004", "gamma"},
		{"0000000000000000000000000000000000000000000000000000000000000005", "beta"},
		{"0000000000000000000000000000000000000000000000000000000000000006", "alpha"},
		{"0000000000000000000000000000000000000000000000000000000000000007", "alpha"},
		{"0000000000000000000000000000000000000000000000000000000000000008", "beta"},
		{"0000000000000000000000000000000000000000000000000000000000000009", "gamma"},
		{"000000000000000000000000000000000000000000000000000000000000000a", "gamma"},
		{"000000000000000000000000000000000000000000000000000000000000000b", "gamma"},
	}
	for _, g := range golden {
		owner, ok := r.Owner(g.key)
		if !ok || owner != g.owner {
			t.Errorf("Owner(%s) = %q, %v; want %q", g.key, owner, ok, g.owner)
		}
	}
}

// testKeys builds n distinct well-formed (64-hex) keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i)
	}
	return keys
}

// TestRingBuildOrderIndependence proves the assignment is a pure
// function of the membership set: two gateways that learned of the
// same backends in different orders route identically.
func TestRingBuildOrderIndependence(t *testing.T) {
	a := NewRing(32)
	b := NewRing(32)
	for _, id := range []string{"n1", "n2", "n3", "n4"} {
		a.Add(id)
	}
	for _, id := range []string{"n3", "n1", "n4", "n2"} {
		b.Add(id)
	}
	for _, k := range testKeys(512) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("Owner(%s) differs by build order: %q vs %q", k, oa, ob)
		}
	}
}

// TestRingMinimalMovementOnJoin is the consistent-hashing contract:
// when a fourth backend joins a three-backend ring, only keys that
// re-home onto the joiner move (no key changes hands between existing
// members), and the moved share is about 1/4 of the keyspace.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	keys := testKeys(4000)
	r := NewRing(64)
	for _, id := range []string{"n1", "n2", "n3"} {
		r.Add(id)
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	r.Add("n4")
	moved := 0
	for _, k := range keys {
		after, _ := r.Owner(k)
		if after == before[k] {
			continue
		}
		if after != "n4" {
			t.Fatalf("key %s moved %q → %q, but only the joiner n4 may gain keys", k, before[k], after)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("no keys moved to the joiner: the ring is not rebalancing")
	}
	// Expected share is 1/4; vnode placement scatter allows some slack,
	// but far more than that means the ring is not spreading load.
	if frac := float64(moved) / float64(len(keys)); frac > 0.40 {
		t.Fatalf("join moved %.0f%% of keys, want about 25%% (≤ 40%%)", frac*100)
	}
}

// TestRingExactPreservationOnLeave is the other half of the contract:
// removing a member re-homes exactly its own keys and leaves every
// other assignment untouched — and the result equals a ring that never
// contained the member at all.
func TestRingExactPreservationOnLeave(t *testing.T) {
	keys := testKeys(2000)
	r := NewRing(64)
	for _, id := range []string{"n1", "n2", "n3", "n4"} {
		r.Add(id)
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	r.Remove("n2")
	fresh := NewRing(64)
	for _, id := range []string{"n1", "n3", "n4"} {
		fresh.Add(id)
	}
	for _, k := range keys {
		after, _ := r.Owner(k)
		if before[k] != "n2" && after != before[k] {
			t.Fatalf("key %s moved %q → %q on an unrelated leave", k, before[k], after)
		}
		if want, _ := fresh.Owner(k); after != want {
			t.Fatalf("key %s: post-leave owner %q != fresh-ring owner %q", k, after, want)
		}
	}
}

// TestRingOwnersPreference checks the peer-probe order: the current
// owner leads, every member appears exactly once, and for a key that
// just re-homed onto a joiner, the second candidate is the key's
// previous owner — the property the peer-fetch warm path leans on.
func TestRingOwnersPreference(t *testing.T) {
	r := NewRing(64)
	for _, id := range []string{"n1", "n2", "n3"} {
		r.Add(id)
	}
	keys := testKeys(1000)
	for _, k := range keys {
		owners := r.Owners(k)
		if len(owners) != 3 {
			t.Fatalf("Owners(%s) = %v, want all 3 members", k, owners)
		}
		seen := map[string]bool{}
		for _, id := range owners {
			if seen[id] {
				t.Fatalf("Owners(%s) = %v repeats %q", k, owners, id)
			}
			seen[id] = true
		}
		if first, _ := r.Owner(k); owners[0] != first {
			t.Fatalf("Owners(%s)[0] = %q, Owner = %q", k, owners[0], first)
		}
	}

	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}
	r.Add("n4")
	checked := 0
	for _, k := range keys {
		owner, _ := r.Owner(k)
		if owner != "n4" || before[k] == "n4" {
			continue
		}
		if owners := r.Owners(k); owners[1] != before[k] {
			t.Fatalf("key %s re-homed to n4; Owners[1] = %q, want previous owner %q", k, owners[1], before[k])
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no key re-homed onto the joiner; preference property unexercised")
	}
}

// TestRingEmptyAndMembership covers the degenerate cases: an empty
// ring owns nothing, duplicate adds and absent removes are no-ops, and
// Members reports the sorted live set.
func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(0) // 0 selects DefaultVNodes
	if _, ok := r.Owner("00"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if got := r.Owners("00"); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
	r.Add("b")
	r.Add("a")
	r.Add("b") // duplicate: no-op
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Members = %v, want [a b]", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	r.Remove("zzz") // absent: no-op
	if r.Len() != 2 {
		t.Fatalf("Len after absent remove = %d, want 2", r.Len())
	}
	owner, ok := r.Owner("00")
	if !ok || (owner != "a" && owner != "b") {
		t.Fatalf("Owner = %q, %v", owner, ok)
	}
}
