// Package ablation quantifies the SPP-1000 design choices the paper
// argues for qualitatively, by switching them off in the simulator:
//
//   - hardware barrier support vs. a software (message-based) barrier
//     (§7: "hardware support for critical mechanisms yielded excellent
//     operation compared to software alternatives");
//   - the SCI global cache buffer (§2.5) vs. fetching every remote
//     access over the rings;
//   - four parallel rings (§2.5) vs. a single ring;
//   - static partitioning vs. dynamic self-scheduling (§7 future work).
//
// It also runs the paper's own future-work item "running on larger
// configuration platforms": the microbenchmarks and the tree code on up
// to the full 16-hypernode, 128-processor machine.
package ablation

import (
	"fmt"

	"spp1000/internal/apps/fem"
	"spp1000/internal/apps/nbody"
	"spp1000/internal/apps/pic"
	"spp1000/internal/machine"
	"spp1000/internal/pvm"
	"spp1000/internal/runner"
	"spp1000/internal/sim"
	"spp1000/internal/stats"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

// BarrierComparison measures one barrier episode of n threads, first
// with the CPSlib hardware-supported primitive, then with a software
// barrier built from PVM messages through a central coordinator.
type BarrierComparison struct {
	N        int
	Hardware sim.Cycles // last-in to last-out
	Software sim.Cycles
}

// CompareBarrier runs both barriers at the given team size on two
// hypernodes.
func CompareBarrier(n int) (BarrierComparison, error) {
	out := BarrierComparison{N: n}

	// Hardware: the §4.2 semaphore + cached-spin barrier.
	{
		m, err := machine.New(machine.Config{Hypernodes: 2})
		if err != nil {
			return out, err
		}
		b := threads.NewBarrier(m, n, 0)
		_, err = threads.RunTeam(m, n, threads.HighLocality, func(th *machine.Thread, tid int) {
			b.Wait(th)
			th.Delay(sim.Cycles((n - 1 - tid) * 700))
			b.Wait(th)
		})
		if err != nil {
			return out, err
		}
		_, lilo := b.LastEpisode()
		out.Hardware = lilo
	}

	// Software: every thread sends an arrival message to thread 0 and
	// waits for the release message — the portable alternative on a
	// machine without hardware synchronization support.
	{
		m, err := machine.New(machine.Config{Hypernodes: 2})
		if err != nil {
			return out, err
		}
		sys := pvm.NewSystem(m)
		tasks := make([]*pvm.Task, n)
		reg := m.K.NewSemaphore("reg", 0)
		ready := m.K.NewEvent("ready")
		var lastIn, lastOut sim.Cycles
		softBarrier := func(th *machine.Thread, tid int) {
			if th.Now() > lastIn {
				lastIn = th.Now()
			}
			if tid == 0 {
				for i := 1; i < n; i++ {
					tasks[0].Recv()
				}
				for i := 1; i < n; i++ {
					tasks[0].Send(i, 2, 16, nil)
				}
			} else {
				tasks[tid].Send(0, 1, 16, nil)
				tasks[tid].Recv()
			}
			if th.Now() > lastOut {
				lastOut = th.Now()
			}
		}
		_, err = threads.RunTeam(m, n, threads.HighLocality, func(th *machine.Thread, tid int) {
			tasks[tid] = sys.AddTask(th)
			reg.V()
			if tid == 0 {
				for i := 0; i < n; i++ {
					reg.P(th.P)
				}
				ready.Set()
			} else {
				ready.Wait(th.P)
			}
			softBarrier(th, tid) // warm
			th.Delay(sim.Cycles((n - 1 - tid) * 700))
			lastIn, lastOut = 0, 0
			softBarrier(th, tid) // measured
		})
		if err != nil {
			return out, err
		}
		out.Software = lastOut - lastIn
	}
	return out, nil
}

// BufferComparison measures the cost of m repeated reads of a remote
// line set from one CPU, with and without the SCI global cache buffer.
type BufferComparison struct {
	Reads         int
	WithBuffer    sim.Cycles
	WithoutBuffer sim.Cycles
}

// CompareGlobalBuffer reads the same 64 remote lines eight times over
// (with a cache too small to hold them, so every read reaches the
// memory system).
func CompareGlobalBuffer() (BufferComparison, error) {
	run := func(disable bool) (sim.Cycles, error) {
		m, err := machine.New(machine.Config{Hypernodes: 2, CacheLines: 16})
		if err != nil {
			return 0, err
		}
		m.Mem.DisableGlobalBuffer = disable
		remote := m.Alloc("remote", topology.NearShared, 1, 0)
		var total sim.Cycles
		m.Spawn("reader", topology.MakeCPU(0, 0, 0), func(th *machine.Thread) {
			start := th.Now()
			for pass := 0; pass < 8; pass++ {
				for line := 0; line < 64; line++ {
					th.Read(remote, topology.Addr(line*topology.CacheLineBytes))
				}
			}
			total = th.Now() - start
		})
		if err := m.Run(); err != nil {
			return 0, err
		}
		return total, nil
	}
	var out BufferComparison
	out.Reads = 8 * 64
	var err error
	if out.WithBuffer, err = run(false); err != nil {
		return out, err
	}
	if out.WithoutBuffer, err = run(true); err != nil {
		return out, err
	}
	return out, nil
}

// RingComparison measures concurrent remote streaming from all four
// functional units of hypernode 0, with four rings vs. one.
type RingComparison struct {
	FourRings sim.Cycles
	OneRing   sim.Cycles
}

// CompareRings streams 128 distinct remote lines from each of four CPUs
// (one per FU, so with four rings each has a private ring).
func CompareRings() (RingComparison, error) {
	run := func(single bool) (sim.Cycles, error) {
		m, err := machine.New(machine.Config{Hypernodes: 2, CacheLines: 16})
		if err != nil {
			return 0, err
		}
		m.Mem.SingleRing = single
		remote := m.Alloc("remote", topology.NearShared, 1, 0)
		var last sim.Cycles
		done := m.K.NewSemaphore("done", 0)
		for fu := 0; fu < topology.FUsPerNode; fu++ {
			fu := fu
			m.Spawn("streamer", topology.MakeCPU(0, fu, 0), func(th *machine.Thread) {
				for i := 0; i < 128; i++ {
					// Addresses homed on this FU's counterpart so each
					// stream uses its own ring in the 4-ring case.
					addr := topology.Addr((i*topology.FUsPerNode + fu) * topology.CacheLineBytes)
					th.Read(remote, addr)
				}
				if th.Now() > last {
					last = th.Now()
				}
				done.V()
			})
		}
		m.Spawn("join", topology.MakeCPU(0, 0, 1), func(th *machine.Thread) {
			for i := 0; i < topology.FUsPerNode; i++ {
				done.P(th.P)
			}
		})
		if err := m.Run(); err != nil {
			return 0, err
		}
		return last, nil
	}
	var out RingComparison
	var err error
	if out.FourRings, err = run(false); err != nil {
		return out, err
	}
	if out.OneRing, err = run(true); err != nil {
		return out, err
	}
	return out, nil
}

// ScheduleComparison compares static partitioning with dynamic
// self-scheduling of the tree code at a given scale.
type ScheduleComparison struct {
	N         int
	Procs     int
	Imbalance float64
	Static    float64 // Mflop/s
	Dynamic   float64
}

// CompareScheduling runs both schedulers on a counted workload.
func CompareScheduling(w *nbody.Workload, procs, hypernodes int) (ScheduleComparison, error) {
	out := ScheduleComparison{N: w.N, Procs: procs}
	var err error
	if out.Imbalance, err = w.ImbalanceRatio(procs); err != nil {
		return out, err
	}
	s, err := nbody.Run(w, procs, hypernodes, 2)
	if err != nil {
		return out, err
	}
	d, err := nbody.RunDynamic(w, procs, hypernodes, 2)
	if err != nil {
		return out, err
	}
	out.Static = s.Mflops
	out.Dynamic = d.Mflops
	return out, nil
}

// PowerOfTwoComparison measures the §6 observation: "Most of the test
// codes required 16 processors and could not easily be recast to run on
// 15. As a result, operating system functions shared execution
// resources with the applications." A 16-thread PIC run (OS stealing
// cycles from one CPU) is compared against a 15-thread run with a CPU
// left free for the OS.
type PowerOfTwoComparison struct {
	Proc15 float64 // Mflop/s with one CPU left to the OS
	Proc16 float64 // Mflop/s saturated
}

// ComparePowerOfTwo measures both configurations on the small PIC
// problem. Applications written for powers of two cannot use the
// 15-thread option — this quantifies what that rigidity costs.
func ComparePowerOfTwo() (PowerOfTwoComparison, error) {
	var out PowerOfTwoComparison
	r15, err := pic.RunShared(pic.Small, 15, 5)
	if err != nil {
		return out, err
	}
	r16, err := pic.RunShared(pic.Small, 16, 5)
	if err != nil {
		return out, err
	}
	out.Proc15 = r15.Mflops
	out.Proc16 = r16.Mflops
	return out, nil
}

// LightweightComparison measures repeated parallel regions dispatched
// by full fork-joins versus a persistent worker pool — the §7
// "lightweight threads" future-work item.
type LightweightComparison struct {
	Regions  int
	ForkJoin sim.Cycles
	Pool     sim.Cycles
}

// CompareLightweight runs 10 16-thread regions of small bodies both ways.
func CompareLightweight() (LightweightComparison, error) {
	out := LightweightComparison{Regions: 10}
	body := func(th *machine.Thread, tid int) { th.ComputeCycles(500) }

	m1, err := machine.New(machine.Config{Hypernodes: 2})
	if err != nil {
		return out, err
	}
	m1.Spawn("main", topology.MakeCPU(0, 0, 0), func(main *machine.Thread) {
		start := main.Now()
		for r := 0; r < out.Regions; r++ {
			threads.ForkJoin(main, 16, threads.HighLocality, body)
		}
		out.ForkJoin = main.Now() - start
	})
	if err := m1.Run(); err != nil {
		return out, err
	}

	m2, err := machine.New(machine.Config{Hypernodes: 2})
	if err != nil {
		return out, err
	}
	m2.Spawn("main", topology.MakeCPU(0, 0, 0), func(main *machine.Thread) {
		p := threads.NewPool(m2, 16, threads.HighLocality)
		start := main.Now()
		for r := 0; r < out.Regions; r++ {
			p.Region(main, body)
		}
		out.Pool = main.Now() - start
		p.Close()
	})
	if err := m2.Run(); err != nil {
		return out, err
	}
	return out, nil
}

// Report runs the full ablation suite and renders it. The studies are
// mutually independent (every comparison builds its own machines), so
// they are dispatched through the host worker pool as sections and
// concatenated in the fixed report order.
func Report() (string, error) {
	parts, err := runner.Sections(
		func() (string, error) {
			tb := stats.NewTable("Ablation: hardware vs. software synchronization (LILO µs)",
				"threads", "hardware barrier", "software (PVM) barrier", "ratio")
			ns := []int{4, 8, 16}
			cs, err := runner.Map(len(ns), func(i int) (BarrierComparison, error) {
				return CompareBarrier(ns[i])
			})
			if err != nil {
				return "", err
			}
			for i, n := range ns {
				c := cs[i]
				tb.AddRow(n, c.Hardware.Micros(), c.Software.Micros(),
					c.Software.Micros()/c.Hardware.Micros())
			}
			return tb.Render() + "\n", nil
		},
		func() (string, error) {
			buf, err := CompareGlobalBuffer()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("Ablation: SCI global cache buffer (512 repeated remote reads)\n"+
				"  with buffer:    %v\n  without buffer: %v (%.1fx)\n\n",
				buf.WithBuffer, buf.WithoutBuffer,
				float64(buf.WithoutBuffer)/float64(buf.WithBuffer)), nil
		},
		func() (string, error) {
			rings, err := CompareRings()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("Ablation: four parallel rings vs. one (4 FUs streaming)\n"+
				"  four rings: %v\n  one ring:   %v (%.2fx)\n\n",
				rings.FourRings, rings.OneRing,
				float64(rings.OneRing)/float64(rings.FourRings)), nil
		},
		func() (string, error) {
			w := nbody.CountWorkload(32768, 64, 1)
			sched, err := CompareScheduling(w, 16, 2)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("Ablation: static partition vs. dynamic self-scheduling (tree code, %d particles, 16 CPUs)\n"+
				"  measured load imbalance: %.3f\n  static:  %.1f Mflop/s\n  dynamic: %.1f Mflop/s (%+.1f%%)\n\n",
				sched.N, sched.Imbalance, sched.Static, sched.Dynamic,
				100*(sched.Dynamic/sched.Static-1)), nil
		},
		func() (string, error) {
			pow2, err := ComparePowerOfTwo()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("Study: power-of-two rigidity vs. OS intrusion (§6, PIC small problem)\n"+
				"  16 threads (OS steals cycles): %.1f Mflop/s\n"+
				"  15 threads (one CPU to the OS): %.1f Mflop/s\n"+
				"  (static power-of-two codes cannot take the 15-thread option)\n\n",
				pow2.Proc16, pow2.Proc15), nil
		},
		ComparePlacement,
		func() (string, error) {
			lw, err := CompareLightweight()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("\nStudy: lightweight threads (§7 future work): %d parallel regions × 16 threads\n"+
				"  fork-join per region: %v\n  persistent pool:      %v (%.1fx lighter)\n",
				lw.Regions, lw.ForkJoin, lw.Pool, float64(lw.ForkJoin)/float64(lw.Pool)), nil
		},
	)
	if err != nil {
		return "", err
	}
	var out string
	for _, p := range parts {
		out += p
	}
	return out, nil
}

// ComparePlacement answers the counterfactual §6 raises: what would
// the non-operational block-shared placement have bought the FEM code?
// It reruns the Fig. 7 sweep around the 8→9 processor dip with the
// partitions homed on their threads' hypernodes.
func ComparePlacement() (string, error) {
	tb := stats.NewTable("Study: FEM with operational block-shared placement (useful Mflop/s)",
		"procs", "near-shared@hn0 (as measured)", "block-shared (counterfactual)")
	ps := []int{8, 9, 12, 16}
	type pair struct{ base, better float64 }
	pts, err := runner.Map(len(ps), func(i int) (pair, error) {
		base, err := fem.RunPlaced(fem.SmallGrid, fem.GatherScatter, ps[i], 3, fem.HostedNearShared)
		if err != nil {
			return pair{}, err
		}
		better, err := fem.RunPlaced(fem.SmallGrid, fem.GatherScatter, ps[i], 3, fem.BlockSharedPartition)
		if err != nil {
			return pair{}, err
		}
		return pair{base.UsefulMflops, better.UsefulMflops}, nil
	})
	if err != nil {
		return "", err
	}
	for i, p := range ps {
		tb.AddRow(p, pts[i].base, pts[i].better)
	}
	return tb.Render(), nil
}
