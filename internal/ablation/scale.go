package ablation

import (
	"fmt"

	"spp1000/internal/apps/nbody"
	"spp1000/internal/microbench"
	"spp1000/internal/runner"
	"spp1000/internal/sim"
	"spp1000/internal/stats"
	"spp1000/internal/threads"
)

// ScaleReport runs the paper's stated near-term future work (§7):
// "running on larger configuration platforms." The testbed had two
// hypernodes; the architecture allows sixteen (128 processors). The
// sweep extrapolates the §4 primitives and the tree code to the full
// machine on the simulator.
func ScaleReport() (string, error) {
	configs := []struct {
		hypernodes int
		threads    int
	}{
		{2, 16}, {4, 32}, {8, 64}, {16, 128},
	}

	type prim struct{ fj, lifo, lilo sim.Cycles }
	prims, err := runner.Map(len(configs), func(i int) (prim, error) {
		cfg := configs[i]
		t, err := microbench.ForkJoinCost(cfg.hypernodes, cfg.threads, threads.HighLocality)
		if err != nil {
			return prim{}, err
		}
		lifo, lilo, err := microbench.BarrierCost(cfg.hypernodes, cfg.threads, threads.HighLocality)
		if err != nil {
			return prim{}, err
		}
		return prim{t, lifo, lilo}, nil
	})
	if err != nil {
		return "", err
	}
	fj := &stats.Series{Name: "fork-join (µs)"}
	barLIFO := &stats.Series{Name: "barrier LIFO (µs)"}
	barLILO := &stats.Series{Name: "barrier LILO (µs)"}
	for i, cfg := range configs {
		fj.Add(float64(cfg.threads), prims[i].fj.Micros())
		barLIFO.Add(float64(cfg.threads), prims[i].lifo.Micros())
		barLILO.Add(float64(cfg.threads), prims[i].lilo.Micros())
	}
	out := stats.Render("Extrapolation: primitives up to 16 hypernodes / 128 CPUs",
		"threads", "µs", fj, barLIFO, barLILO)

	// Tree code on the growing machine (64 work blocks cap the team at
	// 64 threads). runs[0] is the 1-CPU baseline.
	w := nbody.CountWorkload(262144, 64, 1)
	runs := []struct{ p, hn int }{{1, 1}, {8, 1}, {16, 2}, {32, 4}, {64, 8}}
	res, err := runner.Map(len(runs), func(i int) (nbody.Result, error) {
		return nbody.Run(w, runs[i].p, runs[i].hn, 2)
	})
	if err != nil {
		return "", err
	}
	base := res[0]
	sp := &stats.Series{Name: "speedup"}
	rate := &stats.Series{Name: "Mflop/s"}
	for i, cfg := range runs[1:] {
		sp.Add(float64(cfg.p), base.Seconds/res[i+1].Seconds)
		rate.Add(float64(cfg.p), res[i+1].Mflops)
	}
	out += "\n" + stats.Render("Extrapolation: tree code (262144 particles) beyond the testbed",
		"CPUs", "speedup / Mflop/s", sp, rate)
	out += fmt.Sprintf("(1-CPU rate %.1f Mflop/s; the paper's testbed stopped at 16 CPUs)\n", base.Mflops)
	return out, nil
}
