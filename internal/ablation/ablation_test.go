package ablation

import (
	"strings"
	"testing"

	"spp1000/internal/apps/fem"
	"spp1000/internal/apps/nbody"
)

func TestHardwareBarrierBeatsSoftware(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		c, err := CompareBarrier(n)
		if err != nil {
			t.Fatal(err)
		}
		// §7: hardware support yields excellent operation compared to
		// software alternatives — a multiple, growing with team size.
		ratio := float64(c.Software) / float64(c.Hardware)
		if ratio < 2 {
			t.Errorf("n=%d: software/hardware barrier ratio = %.1f, want ≫1", n, ratio)
		}
	}
	// The gap widens with more threads (the coordinator serializes).
	c8, err := CompareBarrier(8)
	if err != nil {
		t.Fatal(err)
	}
	c16, err := CompareBarrier(16)
	if err != nil {
		t.Fatal(err)
	}
	r8 := float64(c8.Software) / float64(c8.Hardware)
	r16 := float64(c16.Software) / float64(c16.Hardware)
	if r16 <= r8 {
		t.Errorf("software penalty should grow with team size: %.1f then %.1f", r8, r16)
	}
}

func TestGlobalBufferWins(t *testing.T) {
	c, err := CompareGlobalBuffer()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(c.WithoutBuffer) / float64(c.WithBuffer)
	// Without the buffer every re-read is a ring transaction (~8x a
	// crossbar access); with it, only the first touch crosses the ring.
	if ratio < 2 || ratio > 8 {
		t.Errorf("buffer ablation ratio = %.1f, want the ring/crossbar multiple", ratio)
	}
}

func TestFourRingsBeatOne(t *testing.T) {
	c, err := CompareRings()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(c.OneRing) / float64(c.FourRings)
	// Four concurrent streams on one ring serialize: ~3-4x.
	if ratio < 1.8 || ratio > 4.5 {
		t.Errorf("single-ring slowdown = %.2f, want ≈3-4", ratio)
	}
}

func TestSchedulingComparison(t *testing.T) {
	w := nbody.CountWorkload(32768, 48, 1)
	c, err := CompareScheduling(w, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Imbalance <= 1 {
		t.Fatalf("measured imbalance = %v, expected >1 for a Plummer sphere", c.Imbalance)
	}
	if c.Dynamic <= c.Static {
		t.Errorf("dynamic (%v) should beat static (%v) at imbalance %.3f",
			c.Dynamic, c.Static, c.Imbalance)
	}
}

func TestPowerOfTwoStudy(t *testing.T) {
	c, err := ComparePowerOfTwo()
	if err != nil {
		t.Fatal(err)
	}
	// 16 saturated threads still beat 15 (the OS tax is a few percent,
	// not a whole CPU's worth) — but by less than 16/15.
	if c.Proc16 <= c.Proc15 {
		t.Errorf("16 threads (%v) should still beat 15 (%v)", c.Proc16, c.Proc15)
	}
	if ratio := c.Proc16 / c.Proc15; ratio > 16.0/15.0 {
		t.Errorf("16/15 rate ratio %.3f exceeds the ideal %.3f — intrusion missing", ratio, 16.0/15.0)
	}
}

func TestPlacementCounterfactual(t *testing.T) {
	// Block-shared placement must remove the FEM 8→9 dip.
	base9, err := fem.RunPlaced(fem.SmallGrid, fem.GatherScatter, 9, 2, fem.HostedNearShared)
	if err != nil {
		t.Fatal(err)
	}
	block9, err := fem.RunPlaced(fem.SmallGrid, fem.GatherScatter, 9, 2, fem.BlockSharedPartition)
	if err != nil {
		t.Fatal(err)
	}
	if block9.UsefulMflops <= base9.UsefulMflops*1.2 {
		t.Errorf("block-shared at 9 procs (%v) should clearly beat near-shared (%v)",
			block9.UsefulMflops, base9.UsefulMflops)
	}
	block8, err := fem.RunPlaced(fem.SmallGrid, fem.GatherScatter, 8, 2, fem.BlockSharedPartition)
	if err != nil {
		t.Fatal(err)
	}
	if block9.UsefulMflops <= block8.UsefulMflops {
		t.Errorf("with block-shared placement the dip should vanish: %v at 8, %v at 9",
			block8.UsefulMflops, block9.UsefulMflops)
	}
}

func TestReportRenders(t *testing.T) {
	out, err := Report()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hardware", "software", "global cache buffer", "rings", "self-scheduling"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestScaleReport(t *testing.T) {
	out, err := ScaleReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"128", "tree code", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("scale report missing %q", want)
		}
	}
}
