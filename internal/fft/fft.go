// Package fft provides the fast-Fourier-transform substrate that the
// PIC code's Poisson solver calls in place of Convex VECLIB (paper
// §5.1.1): an iterative radix-2 complex transform, multi-dimensional
// transforms over 3-D grids, and a periodic Poisson solver in
// wavenumber space.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Forward transforms x in place (decimation in time, radix-2).
// len(x) must be a power of two.
func Forward(x []complex128) error { return transform(x, -1) }

// Inverse applies the inverse transform in place, including the 1/N
// normalization.
func Inverse(x []complex128) error {
	if err := transform(x, +1); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func transform(x []complex128, sign float64) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// Grid3 is a dense 3-D complex grid with nx×ny×nz points, x fastest.
type Grid3 struct {
	NX, NY, NZ int
	Data       []complex128
}

// NewGrid3 allocates a zero grid; all dimensions must be powers of two.
func NewGrid3(nx, ny, nz int) (*Grid3, error) {
	if !IsPow2(nx) || !IsPow2(ny) || !IsPow2(nz) {
		return nil, fmt.Errorf("fft: grid %dx%dx%d must have power-of-two dimensions", nx, ny, nz)
	}
	return &Grid3{NX: nx, NY: ny, NZ: nz, Data: make([]complex128, nx*ny*nz)}, nil
}

// Index flattens (i,j,k).
func (g *Grid3) Index(i, j, k int) int { return i + g.NX*(j+g.NY*k) }

// At returns the value at (i,j,k).
func (g *Grid3) At(i, j, k int) complex128 { return g.Data[g.Index(i, j, k)] }

// Set stores the value at (i,j,k).
func (g *Grid3) Set(i, j, k int, v complex128) { g.Data[g.Index(i, j, k)] = v }

// Forward3 transforms the grid in place along all three axes.
func Forward3(g *Grid3) error { return transform3(g, Forward) }

// Inverse3 applies the inverse transform along all three axes.
func Inverse3(g *Grid3) error { return transform3(g, Inverse) }

func transform3(g *Grid3, f func([]complex128) error) error {
	nx, ny, nz := g.NX, g.NY, g.NZ
	// X lines (contiguous).
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			base := g.Index(0, j, k)
			if err := f(g.Data[base : base+nx]); err != nil {
				return err
			}
		}
	}
	// Y lines.
	line := make([]complex128, ny)
	for k := 0; k < nz; k++ {
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				line[j] = g.At(i, j, k)
			}
			if err := f(line); err != nil {
				return err
			}
			for j := 0; j < ny; j++ {
				g.Set(i, j, k, line[j])
			}
		}
	}
	// Z lines.
	if nz > 1 {
		linez := make([]complex128, nz)
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				for k := 0; k < nz; k++ {
					linez[k] = g.At(i, j, k)
				}
				if err := f(linez); err != nil {
					return err
				}
				for k := 0; k < nz; k++ {
					g.Set(i, j, k, linez[k])
				}
			}
		}
	}
	return nil
}

// SolvePoisson solves ∇²φ = −ρ on a periodic unit-spaced grid: ρ is
// transformed, divided by −k², and transformed back; the k=0 (mean)
// mode is set to zero. rho and phi may alias.
func SolvePoisson(rho *Grid3, phi *Grid3) error {
	if rho != phi {
		copy(phi.Data, rho.Data)
		phi.NX, phi.NY, phi.NZ = rho.NX, rho.NY, rho.NZ
	}
	if err := Forward3(phi); err != nil {
		return err
	}
	nx, ny, nz := phi.NX, phi.NY, phi.NZ
	for k := 0; k < nz; k++ {
		kz := wavenumber(k, nz)
		for j := 0; j < ny; j++ {
			ky := wavenumber(j, ny)
			for i := 0; i < nx; i++ {
				kx := wavenumber(i, nx)
				k2 := kx*kx + ky*ky + kz*kz
				idx := phi.Index(i, j, k)
				if k2 == 0 {
					phi.Data[idx] = 0
					continue
				}
				// ∇²φ = −ρ  ⇒  −k²φ̂ = −ρ̂  ⇒  φ̂ = ρ̂ / k².
				phi.Data[idx] /= complex(k2, 0)
			}
		}
	}
	return Inverse3(phi)
}

// wavenumber maps grid index i of an n-point axis to the discrete
// Laplacian eigen-wavenumber 2 sin(π i / n) · n/L with L = n (unit
// spacing): k_eff = 2 sin(π i / n).
func wavenumber(i, n int) float64 {
	return 2 * math.Sin(math.Pi*float64(i)/float64(n))
}

// Flops estimates the floating-point operations of one n-point complex
// FFT (the standard 5 n log2 n count), used by the performance model.
func Flops(n int) int64 {
	if n <= 1 {
		return 0
	}
	lg := math.Log2(float64(n))
	return int64(5 * float64(n) * lg)
}

// Flops3 estimates the operations of one full 3-D transform.
func Flops3(nx, ny, nz int) int64 {
	return int64(ny*nz)*Flops(nx) + int64(nx*nz)*Flops(ny) + int64(nx*ny)*Flops(nz)
}
