package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"spp1000/internal/rng"
)

// dft is the O(n²) reference transform.
func dft(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			out[k] += x[j] * cmplx.Exp(complex(0, ang))
		}
	}
	return out
}

func approxEq(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestForwardMatchesDFT(t *testing.T) {
	r := rng.New(11)
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Float64()-0.5, r.Float64()-0.5)
		}
		want := dft(x)
		if err := Forward(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !approxEq(x[i], want[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d: FFT[%d] = %v, DFT = %v", n, i, x[i], want[i])
			}
		}
	}
}

func TestNonPow2Rejected(t *testing.T) {
	if err := Forward(make([]complex128, 12)); err == nil {
		t.Fatal("length 12 should be rejected")
	}
	if err := Inverse(make([]complex128, 0)); err == nil {
		t.Fatal("length 0 should be rejected")
	}
	if _, err := NewGrid3(4, 6, 4); err == nil {
		t.Fatal("6 should be rejected as a grid dimension")
	}
}

// Property: Inverse(Forward(x)) == x.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed uint64, lg uint8) bool {
		n := 1 << (lg%8 + 1)
		r := rng.New(seed)
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Float64()*10-5, r.Float64()*10-5)
			orig[i] = x[i]
		}
		if Forward(x) != nil || Inverse(x) != nil {
			return false
		}
		for i := range x {
			if !approxEq(x[i], orig[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parseval — energy preserved up to 1/N scaling.
func TestParsevalProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		n := 64
		r := rng.New(seed)
		x := make([]complex128, n)
		var timeE float64
		for i := range x {
			x[i] = complex(r.Float64()-0.5, r.Float64()-0.5)
			timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if Forward(x) != nil {
			return false
		}
		var freqE float64
		for i := range x {
			freqE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		return math.Abs(freqE/float64(n)-timeE) < 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid3RoundTrip(t *testing.T) {
	g, err := NewGrid3(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	orig := make([]complex128, len(g.Data))
	for i := range g.Data {
		g.Data[i] = complex(r.Float64(), 0)
		orig[i] = g.Data[i]
	}
	if err := Forward3(g); err != nil {
		t.Fatal(err)
	}
	if err := Inverse3(g); err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if !approxEq(g.Data[i], orig[i], 1e-9) {
			t.Fatalf("3-D round trip differs at %d: %v vs %v", i, g.Data[i], orig[i])
		}
	}
}

// TestPoissonPlaneWave: for ρ = cos(2πm·x/n), the solution of ∇²φ = −ρ
// with the discrete k is φ = ρ / k_eff².
func TestPoissonPlaneWave(t *testing.T) {
	n, m := 32, 3
	g, _ := NewGrid3(n, 1, 1)
	for i := 0; i < n; i++ {
		g.Data[i] = complex(math.Cos(2*math.Pi*float64(m)*float64(i)/float64(n)), 0)
	}
	phi, _ := NewGrid3(n, 1, 1)
	if err := SolvePoisson(g, phi); err != nil {
		t.Fatal(err)
	}
	keff := 2 * math.Sin(math.Pi*float64(m)/float64(n))
	for i := 0; i < n; i++ {
		want := math.Cos(2*math.Pi*float64(m)*float64(i)/float64(n)) / (keff * keff)
		if math.Abs(real(phi.Data[i])-want) > 1e-9 {
			t.Fatalf("phi[%d] = %v, want %v", i, real(phi.Data[i]), want)
		}
		if math.Abs(imag(phi.Data[i])) > 1e-9 {
			t.Fatalf("phi[%d] has imaginary part %v", i, imag(phi.Data[i]))
		}
	}
}

// TestPoissonDiscreteLaplacian: applying the 7-point discrete Laplacian
// to the solution recovers −ρ (up to the removed mean).
func TestPoissonDiscreteLaplacian(t *testing.T) {
	nx, ny, nz := 8, 8, 8
	rho, _ := NewGrid3(nx, ny, nz)
	r := rng.New(17)
	var mean float64
	for i := range rho.Data {
		v := r.Float64() - 0.5
		rho.Data[i] = complex(v, 0)
		mean += v
	}
	mean /= float64(len(rho.Data))
	phi, _ := NewGrid3(nx, ny, nz)
	if err := SolvePoisson(rho, phi); err != nil {
		t.Fatal(err)
	}
	wrap := func(i, n int) int { return (i + n) % n }
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				lap := real(phi.At(wrap(i+1, nx), j, k)) + real(phi.At(wrap(i-1, nx), j, k)) +
					real(phi.At(i, wrap(j+1, ny), k)) + real(phi.At(i, wrap(j-1, ny), k)) +
					real(phi.At(i, j, wrap(k+1, nz))) + real(phi.At(i, j, wrap(k-1, nz))) -
					6*real(phi.At(i, j, k))
				want := -(real(rho.At(i, j, k)) - mean)
				if math.Abs(lap-want) > 1e-8 {
					t.Fatalf("Laplacian mismatch at (%d,%d,%d): %v vs %v", i, j, k, lap, want)
				}
			}
		}
	}
}

func TestFlopsEstimates(t *testing.T) {
	if Flops(1) != 0 {
		t.Fatal("Flops(1) should be 0")
	}
	if Flops(1024) != int64(5*1024*10) {
		t.Fatalf("Flops(1024) = %d", Flops(1024))
	}
	if Flops3(4, 4, 4) <= 0 {
		t.Fatal("Flops3 should be positive")
	}
}
