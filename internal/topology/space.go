package topology

// Space names one virtual-memory object (an allocation with a memory
// class). Caches, directories, and the SCI protocol key their state by
// (space, line) so distinct objects never alias.
type Space uint32

// LineKey identifies one cache line of one memory object.
type LineKey struct {
	Space Space
	Line  uint64
}
