package topology

// Params collects the timing parameters of the simulated machine, in CPU
// cycles (100 MHz → 10 ns each) unless noted. Defaults come from the
// paper: §2.2 (processor), §2.6 (memory latencies), §4 (measured costs of
// the runtime primitives, used to calibrate the software-path constants
// that the paper does not decompose further), and §6 (the ~8× global miss
// ratio).
type Params struct {
	// --- processor ---

	// FlopsPerCycle is the peak floating-point issue rate of one PA-7100
	// (one FLOP per cycle at 100 MHz; divides are handled separately by
	// application cost profiles).
	FlopsPerCycle float64

	// --- memory hierarchy (cycles) ---

	CacheHit         int64 // data cache hit (one access per cycle, §2.6)
	LocalMiss        int64 // miss served by the FU's own memory
	HypernodeMiss    int64 // miss served via the crossbar (other FU or global buffer hit)
	CrossbarTransit  int64 // one crossbar traversal (included in HypernodeMiss; used for extra legs)
	MemoryBankBusy   int64 // bank occupancy per line transfer (contention)
	RingHop          int64 // one SCI ring hop, one direction
	RingPacketFixed  int64 // fixed SCI packet handling at each endpoint
	RemoteDirLookup  int64 // SCI directory/tag lookup at the remote hypernode
	GlobalBufferFill int64 // installing a fetched line in the local global-cache buffer
	UncachedAccess   int64 // read-modify-write on an uncached semaphore cell

	// --- coherence ---

	DirLookup         int64 // intra-hypernode directory tag check
	InvalPerCopy      int64 // invalidating one local cached copy
	SCIListVisit      int64 // walking one node of an SCI sharing list (plus ring hops)
	SpinRefetch       int64 // a spinning CPU observing its line invalid and refetching (excl. memory latency)
	SpinReleaseSerial int64 // serialized line re-supply to one released spinner (barrier fan-out)
	WriteBack         int64 // writing back a dirty line

	// --- thread runtime (CPSlib), cycles ---

	ThreadSpawnLocal  int64 // parent-side cost to create/dispatch one thread on the local hypernode
	ThreadSpawnRemote int64 // ... on a remote hypernode (cross-kernel dispatch)
	RemoteRuntimeInit int64 // one-time cost when a fork first touches a second hypernode (§4.1: ~50 µs)
	ThreadStart       int64 // child-side cost from dispatch to first user instruction
	JoinPerThread     int64 // parent-side cost to reap one finished thread
	BarrierEnter      int64 // bookkeeping before the semaphore decrement

	// --- PVM (cycles) ---

	PVMPackPerByte  float64 // packing into the shared buffer
	PVMSendFixed    int64   // fixed send-side library cost
	PVMRecvFixed    int64   // fixed receive-side library cost
	PVMCopyPerByte  float64 // copy from shared buffer at receiver (local)
	PVMPagePenalty  int64   // extra per-page cost beyond 2 pages (page management, §4.3 knee)
	PVMDaemonWakeup int64   // daemon involvement for inter-hypernode rendezvous

	// --- OS noise ---

	// OSIntrusion models the multitasking OS sharing CPUs with the
	// application (paper §6): when an application requests every CPU of
	// the machine, OS work steals cycles from one CPU, stretching that
	// CPU's compute time by the given fraction.
	OSIntrusion float64
}

// DefaultParams returns the calibrated SPP-1000 parameter set.
func DefaultParams() Params {
	return Params{
		FlopsPerCycle: 1.0,

		CacheHit:         1,
		LocalMiss:        50,
		HypernodeMiss:    55,
		CrossbarTransit:  6,
		MemoryBankBusy:   20,
		RingHop:          40,
		RingPacketFixed:  70,
		RemoteDirLookup:  90,
		GlobalBufferFill: 60,
		UncachedAccess:   60,

		DirLookup:         10,
		InvalPerCopy:      20,
		SCIListVisit:      60,
		SpinRefetch:       120,
		SpinReleaseSerial: 200, // Fig. 3: ≈2 µs per released thread
		WriteBack:         40,

		ThreadSpawnLocal:  420,  // ≈4.2 µs; Fig. 2: ~10 µs per extra local pair
		ThreadSpawnRemote: 1500, // ≈15 µs; Fig. 2: ~20 µs per uniform pair
		RemoteRuntimeInit: 5000, // 50 µs step at the hypernode boundary
		ThreadStart:       150,
		JoinPerThread:     80,
		BarrierEnter:      150,

		PVMPackPerByte:  0.010,
		PVMSendFixed:    700, // 7 µs; round trip local ≈ 30 µs below 8 KB
		PVMRecvFixed:    650,
		PVMCopyPerByte:  0.012,
		PVMPagePenalty:  1500, // per page beyond two pages: >8 KB degradation
		PVMDaemonWakeup: 2000, // inter-hypernode rendezvous: global RT ≈ 70 µs (§4.3)

		OSIntrusion: 0.04,
	}
}

// InterNodeLookahead reports a conservative lower bound, in cycles, on
// the latency of any interaction that crosses a hypernode boundary: the
// crossbar leg to the ring-interface FU, the fixed SCI packet handling
// at the injecting endpoint, and at least one ring hop. Every modeled
// cross-hypernode path costs at least this much — a clean global miss
// adds the return legs, directory and memory (GlobalMissCycles), an
// uncached remote RMW adds the directory and semaphore cell, a remote
// thread dispatch costs ThreadSpawnRemote (≈13× this bound), and a PVM
// rendezvous adds the daemon wakeup. A hypernode-partitioned simulation
// (internal/parsim) therefore uses this as its conservative lookahead:
// partitions may advance independently within a window of this width
// because no event inside the window can affect another hypernode
// sooner than the window's end.
func (p Params) InterNodeLookahead() int64 {
	return p.CrossbarTransit + p.RingPacketFixed + p.RingHop
}

// GlobalMissCycles reports the modeled end-to-end latency of a clean
// global (remote hypernode) miss with the given hop count, as the sum of
// the path legs: crossbar to the ring FU, request hops, remote directory
// and memory, return hops, and global-buffer install. With the default
// parameters and the mean hop count of a 2-hypernode machine this is
// ≈8× HypernodeMiss, matching §6.
func (p Params) GlobalMissCycles(hops int) int64 {
	return p.CrossbarTransit + // to the ring interface FU
		2*p.RingPacketFixed + // inject + eject
		int64(2*hops)*p.RingHop + // request + response traversal
		p.RemoteDirLookup +
		p.LocalMiss + // remote memory fetch
		p.GlobalBufferFill +
		p.CrossbarTransit // back to the requesting CPU
}
