package topology

import (
	"testing"
	"testing/quick"
)

func TestCPUIDDecomposition(t *testing.T) {
	cases := []struct {
		id                  CPUID
		hn, fu, local, ring int
	}{
		{0, 0, 0, 0, 0},
		{1, 0, 0, 1, 0},
		{2, 0, 1, 0, 1},
		{7, 0, 3, 1, 3},
		{8, 1, 0, 0, 0},
		{15, 1, 3, 1, 3},
		{127, 15, 3, 1, 3},
	}
	for _, c := range cases {
		if c.id.Hypernode() != c.hn || c.id.FU() != c.fu || c.id.Local() != c.local || c.id.Ring() != c.ring {
			t.Errorf("CPUID(%d) = hn%d.fu%d.cpu%d ring%d, want hn%d.fu%d.cpu%d ring%d",
				int(c.id), c.id.Hypernode(), c.id.FU(), c.id.Local(), c.id.Ring(), c.hn, c.fu, c.local, c.ring)
		}
	}
}

func TestMakeCPURoundTrip(t *testing.T) {
	prop := func(raw uint8) bool {
		id := CPUID(int(raw) % 128)
		return MakeCPU(id.Hypernode(), id.FU(), id.Local()) == id
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, -1, 17, 100} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) should fail", n)
		}
	}
	for _, n := range []int{1, 2, 16} {
		topo, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		if topo.NumCPUs() != n*8 {
			t.Errorf("New(%d).NumCPUs() = %d, want %d", n, topo.NumCPUs(), n*8)
		}
	}
}

func TestCPUsEnumeration(t *testing.T) {
	topo, _ := New(2)
	ids := topo.CPUs()
	if len(ids) != 16 {
		t.Fatalf("got %d CPUs, want 16", len(ids))
	}
	for i, id := range ids {
		if int(id) != i {
			t.Fatalf("CPUs()[%d] = %d", i, int(id))
		}
	}
}

func TestRingHops(t *testing.T) {
	topo, _ := New(4)
	cases := []struct{ src, dst, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {3, 0, 1}, {2, 1, 3},
	}
	for _, c := range cases {
		if got := topo.RingHops(c.src, c.dst); got != c.want {
			t.Errorf("RingHops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestAddrLinePage(t *testing.T) {
	if Addr(0).Line() != 0 || Addr(31).Line() != 0 || Addr(32).Line() != 1 {
		t.Error("line index math wrong")
	}
	if Addr(4095).Page() != 0 || Addr(4096).Page() != 1 {
		t.Error("page index math wrong")
	}
}

func TestHomeThreadPrivate(t *testing.T) {
	topo, _ := New(2)
	cpu := MakeCPU(1, 2, 1)
	pl := topo.Home(ThreadPrivate, 12345, cpu, 0, 0)
	if pl.Hypernode != 1 || pl.FU != 2 {
		t.Fatalf("thread-private home = %+v, want accessor's own FU", pl)
	}
}

func TestHomeNodePrivateStaysLocal(t *testing.T) {
	topo, _ := New(4)
	cpu := MakeCPU(3, 0, 0)
	for a := Addr(0); a < 1024; a += 32 {
		pl := topo.Home(NodePrivate, a, cpu, 0, 0)
		if pl.Hypernode != 3 {
			t.Fatalf("node-private left the hypernode: %+v", pl)
		}
	}
}

func TestHomeNearSharedHosted(t *testing.T) {
	topo, _ := New(4)
	cpu := MakeCPU(0, 0, 0)
	seenFU := map[int]bool{}
	for a := Addr(0); a < 1024; a += 32 {
		pl := topo.Home(NearShared, a, cpu, 2, 0)
		if pl.Hypernode != 2 {
			t.Fatalf("near-shared not on host hypernode: %+v", pl)
		}
		seenFU[pl.FU] = true
	}
	if len(seenFU) != FUsPerNode {
		t.Fatalf("near-shared not interleaved across FUs: %v", seenFU)
	}
}

func TestHomeFarSharedRoundRobinPages(t *testing.T) {
	topo, _ := New(4)
	cpu := MakeCPU(0, 0, 0)
	for page := 0; page < 8; page++ {
		pl := topo.Home(FarShared, Addr(page*PageBytes), cpu, 0, 0)
		if pl.Hypernode != page%4 {
			t.Fatalf("page %d homed at hn%d, want hn%d", page, pl.Hypernode, page%4)
		}
	}
}

func TestHomeBlockShared(t *testing.T) {
	topo, _ := New(2)
	cpu := MakeCPU(0, 0, 0)
	block := 1024
	for i := 0; i < 8; i++ {
		pl := topo.Home(BlockShared, Addr(i*block), cpu, 0, block)
		if pl.Hypernode != i%2 {
			t.Fatalf("block %d homed at hn%d, want hn%d", i, pl.Hypernode, i%2)
		}
	}
	// Zero block size falls back to the page size.
	pl := topo.Home(BlockShared, Addr(PageBytes), cpu, 0, 0)
	if pl.Hypernode != 1 {
		t.Fatalf("default block size should be a page; got %+v", pl)
	}
}

// Property: every home is a valid placement within the machine.
func TestHomeAlwaysValid(t *testing.T) {
	topo, _ := New(3)
	prop := func(rawClass uint8, rawAddr uint32, rawCPU uint8, host int8, block uint16) bool {
		class := Class(int(rawClass) % 5)
		cpu := CPUID(int(rawCPU) % topo.NumCPUs())
		pl := topo.Home(class, Addr(rawAddr), cpu, int(host), int(block))
		return pl.Hypernode >= 0 && pl.Hypernode < topo.Hypernodes && pl.FU >= 0 && pl.FU < FUsPerNode
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalMissRatio(t *testing.T) {
	p := DefaultParams()
	// Paper §6: global miss ≈ 8× hypernode-local, measured on the
	// two-hypernode system (one ring hop each way).
	ratio := float64(p.GlobalMissCycles(1)) / float64(p.HypernodeMiss)
	if ratio < 6.5 || ratio > 9.5 {
		t.Fatalf("global/local miss ratio = %.2f, want ≈8", ratio)
	}
}

func TestClassString(t *testing.T) {
	if ThreadPrivate.String() != "thread-private" || FarShared.String() != "far-shared" {
		t.Error("class names wrong")
	}
	if Class(99).String() == "" {
		t.Error("unknown class should still format")
	}
}
