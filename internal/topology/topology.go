// Package topology describes the physical structure of a simulated Convex
// SPP-1000: hypernodes of four functional units (two HP PA-RISC 7100 CPUs
// each) joined by a 5-port crossbar, with up to sixteen hypernodes linked
// by four parallel SCI rings. It also defines the five virtual-memory
// classes the Convex compilers expose and the address-to-home mapping
// rules for each.
package topology

import "fmt"

// Architectural constants fixed by the SPP-1000 design (paper §2).
const (
	CPUsPerFU      = 2 // two PA-7100s per functional unit
	FUsPerNode     = 4 // four functional units per hypernode
	CPUsPerNode    = CPUsPerFU * FUsPerNode
	MaxHypernodes  = 16 // four rings × sixteen hypernodes = 128 CPUs
	NumRings       = 4  // parallel SCI rings; FU i attaches to ring i
	CacheLineBytes = 32
	PageBytes      = 4096
	CacheBytes     = 1 << 20 // 1 MB data cache (instruction cache separate)
	CacheLines     = CacheBytes / CacheLineBytes
)

// CPUID identifies a processor by its global index: hypernode-major,
// functional-unit-minor, CPU within FU last.
type CPUID int

// Hypernode reports which hypernode the CPU belongs to.
func (c CPUID) Hypernode() int { return int(c) / CPUsPerNode }

// FU reports the functional unit index (0..3) within the hypernode.
func (c CPUID) FU() int { return (int(c) % CPUsPerNode) / CPUsPerFU }

// Local reports the CPU index (0 or 1) within its functional unit.
func (c CPUID) Local() int { return int(c) % CPUsPerFU }

// Ring reports the SCI ring its functional unit attaches to.
func (c CPUID) Ring() int { return c.FU() }

func (c CPUID) String() string {
	return fmt.Sprintf("hn%d.fu%d.cpu%d", c.Hypernode(), c.FU(), c.Local())
}

// MakeCPU builds a CPUID from (hypernode, fu, local) coordinates.
func MakeCPU(hn, fu, local int) CPUID {
	return CPUID(hn*CPUsPerNode + fu*CPUsPerFU + local)
}

// Topology is a concrete machine configuration.
type Topology struct {
	Hypernodes int // 1..16
}

// New validates and returns a Topology with n hypernodes.
func New(n int) (Topology, error) {
	if n < 1 || n > MaxHypernodes {
		return Topology{}, fmt.Errorf("topology: hypernodes must be 1..%d, got %d", MaxHypernodes, n)
	}
	return Topology{Hypernodes: n}, nil
}

// NumCPUs reports the total processor count.
func (t Topology) NumCPUs() int { return t.Hypernodes * CPUsPerNode }

// CPUs returns all CPU identifiers in machine order.
func (t Topology) CPUs() []CPUID {
	ids := make([]CPUID, t.NumCPUs())
	for i := range ids {
		ids[i] = CPUID(i)
	}
	return ids
}

// RingHops reports the number of unidirectional ring hops from hypernode
// src to dst (zero when equal).
func (t Topology) RingHops(src, dst int) int {
	if src == dst {
		return 0
	}
	d := dst - src
	if d < 0 {
		d += t.Hypernodes
	}
	return d
}

// Class is one of the five virtual-memory classes of the Convex
// programming model (paper §3.2).
type Class int

const (
	// ThreadPrivate data has one copy per thread, in the memory of the
	// thread's own functional unit.
	ThreadPrivate Class = iota
	// NodePrivate data has one copy per hypernode, shared by its threads.
	NodePrivate
	// NearShared data has a single copy hosted on one hypernode,
	// interleaved across that hypernode's functional units.
	NearShared
	// FarShared data is page-interleaved round-robin across all
	// hypernodes (and across functional units within each).
	FarShared
	// BlockShared is FarShared with a program-chosen distribution block
	// size instead of the page size.
	BlockShared
)

var classNames = [...]string{"thread-private", "node-private", "near-shared", "far-shared", "block-shared"}

func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// Addr is a byte address within one virtual-memory object. Homing rules
// interpret it relative to the object's class.
type Addr uint64

// Line reports the cache-line index of the address.
func (a Addr) Line() uint64 { return uint64(a) / CacheLineBytes }

// Page reports the page index of the address.
func (a Addr) Page() uint64 { return uint64(a) / PageBytes }

// Placement locates the physical home of one cache line.
type Placement struct {
	Hypernode int
	FU        int
}

// Home resolves the home functional unit of a line, following the
// class rules relative to the accessing CPU.
//
//   - ThreadPrivate / NodePrivate: the accessor's own hypernode,
//     interleaved across its functional units by line index
//     (ThreadPrivate lands on the accessor's own FU).
//   - NearShared: hosted hypernode `host`, interleaved across FUs.
//   - FarShared: page round-robin across hypernodes, line-interleaved
//     across FUs within the owning hypernode.
//   - BlockShared: as FarShared with blockBytes-sized units.
func (t Topology) Home(class Class, a Addr, accessor CPUID, host int, blockBytes int) Placement {
	switch class {
	case ThreadPrivate:
		return Placement{Hypernode: accessor.Hypernode(), FU: accessor.FU()}
	case NodePrivate:
		return Placement{Hypernode: accessor.Hypernode(), FU: int(a.Line()) % FUsPerNode}
	case NearShared:
		if host < 0 || host >= t.Hypernodes {
			host = 0
		}
		return Placement{Hypernode: host, FU: int(a.Line()) % FUsPerNode}
	case FarShared:
		hn := int(a.Page()) % t.Hypernodes
		return Placement{Hypernode: hn, FU: int(a.Line()) % FUsPerNode}
	case BlockShared:
		if blockBytes <= 0 {
			blockBytes = PageBytes
		}
		hn := int(uint64(a) / uint64(blockBytes) % uint64(t.Hypernodes))
		return Placement{Hypernode: hn, FU: int(a.Line()) % FUsPerNode}
	default:
		return Placement{Hypernode: accessor.Hypernode(), FU: accessor.FU()}
	}
}
