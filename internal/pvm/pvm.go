// Package pvm reproduces ConvexPVM, the Convex implementation of the
// Parallel Virtual Machine message-passing library on the SPP-1000
// (paper §3.1). Unlike network PVM there is a single daemon for the
// whole machine, and tasks exchange messages through shared memory
// buffers: the sender packs into a shared buffer that the receiver reads
// after the send completes, with no daemon involvement on the local
// fast path. Messages that cross hypernodes ride the SCI rings and pay a
// rendezvous cost; messages larger than two pages (8 KB) pay per-page
// buffer-management penalties — the knee in the paper's Fig. 4.
package pvm

import (
	"fmt"

	"spp1000/internal/machine"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
)

// Message is one in-flight PVM message.
type Message struct {
	Src   int // sending task id
	Tag   int
	Bytes int
	// Payload carries application data by reference (the simulated
	// shared buffer); it is opaque to the library.
	Payload interface{}
}

// System is one PVM virtual machine instance.
type System struct {
	m     *machine.Machine
	tasks []*Task
}

// NewSystem creates the PVM instance for a machine.
func NewSystem(m *machine.Machine) *System {
	return &System{m: m}
}

// Task is one PVM task (a coarse-grained thread with a mailbox).
type Task struct {
	sys  *System
	id   int
	th   *machine.Thread
	mbox *sim.Queue
	// stash holds messages received but deferred by a selective Recv.
	stash []*Message
	// Stats
	Sent, Received int64
	BytesSent      int64
}

// AddTask registers a task running on th and returns it.
// Tasks must be registered before any Send targets them.
func (s *System) AddTask(th *machine.Thread) *Task {
	t := &Task{
		sys:  s,
		id:   len(s.tasks),
		th:   th,
		mbox: s.m.K.NewQueue(fmt.Sprintf("mbox%d", len(s.tasks))),
	}
	s.tasks = append(s.tasks, t)
	return t
}

// ID reports the task identifier (its "tid").
func (t *Task) ID() int { return t.id }

// Thread exposes the underlying simulated thread.
func (t *Task) Thread() *machine.Thread { return t.th }

// pages reports how many whole-or-partial pages a message occupies.
func pages(bytes int) int {
	return (bytes + topology.PageBytes - 1) / topology.PageBytes
}

// Send transmits bytes to the destination task (pack + send). The sender
// blocks for its side of the cost; delivery is scheduled at the arrival
// time, which includes ring transit for inter-hypernode messages.
func (t *Task) Send(dst int, tag int, bytes int, payload interface{}) {
	if dst < 0 || dst >= len(t.sys.tasks) {
		panic(fmt.Sprintf("pvm: send to unknown task %d", dst))
	}
	p := t.th.M.P
	target := t.sys.tasks[dst]

	// Pack into the shared buffer.
	cost := int64(float64(bytes)*p.PVMPackPerByte) + p.PVMSendFixed
	// Page-granularity buffer management beyond two pages (8 KB knee).
	if np := pages(bytes); np > 2 {
		cost += int64(np-2) * p.PVMPagePenalty
	}
	t.th.ComputeCycles(cost)

	arrive := t.th.Now()
	srcHN := t.th.CPU.Hypernode()
	dstHN := target.th.CPU.Hypernode()
	if srcHN != dstHN {
		// Rendezvous through the daemon plus ring occupancy for the
		// buffer transfer.
		t.th.ComputeCycles(p.PVMDaemonWakeup)
		ringIdx := t.th.CPU.Ring()
		if t.th.M.Mem.SingleRing {
			ringIdx = 0
		}
		arrive = t.th.M.Mem.Rings.Send(t.th.Now(), ringIdx, srcHN, dstHN, bytes)
	}

	msg := &Message{Src: t.id, Tag: tag, Bytes: bytes, Payload: payload}
	t.th.M.K.At(arrive, func() { target.mbox.Put(msg) })
	t.Sent++
	t.BytesSent += int64(bytes)
}

// Recv blocks until a message arrives, then pays the receive-side cost
// (unpack copy from the shared buffer; cross-page penalties symmetric
// with the sender's).
func (t *Task) Recv() *Message { return t.RecvFrom(-1, -1) }

// RecvFrom is the selective receive (pvm_recv): it blocks for the
// oldest message matching the source task and tag, with −1 as a
// wildcard for either. Non-matching messages are held for later
// receives in arrival order.
func (t *Task) RecvFrom(src, tag int) *Message {
	match := func(m *Message) bool {
		return (src < 0 || m.Src == src) && (tag < 0 || m.Tag == tag)
	}
	var msg *Message
	for i, m := range t.stash {
		if match(m) {
			msg = m
			t.stash = append(t.stash[:i], t.stash[i+1:]...)
			break
		}
	}
	for msg == nil {
		m := t.mbox.Get(t.th.P).(*Message)
		if match(m) {
			msg = m
		} else {
			t.stash = append(t.stash, m)
		}
	}
	p := t.th.M.P
	cost := p.PVMRecvFixed + int64(float64(msg.Bytes)*p.PVMCopyPerByte)
	if np := pages(msg.Bytes); np > 2 {
		cost += int64(np-2) * p.PVMPagePenalty
	}
	t.th.ComputeCycles(cost)
	t.Received++
	return msg
}

// TryRecv returns the next message if one is already queued or stashed,
// without blocking; ok=false when none is available.
func (t *Task) TryRecv() (*Message, bool) {
	if len(t.stash) == 0 && t.mbox.Len() == 0 {
		return nil, false
	}
	return t.Recv(), true
}

// Pending reports queued plus stashed message count.
func (t *Task) Pending() int { return t.mbox.Len() + len(t.stash) }
