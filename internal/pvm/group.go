package pvm

import "fmt"

// Group is a PVM task group (pvm_joingroup and the group collectives).
// Collective operations are built from point-to-point messages through
// the group's rank-0 task, as PVM 3 implemented them.
type Group struct {
	name  string
	tasks []*Task
}

// NewGroup forms a group from the given tasks; index = group rank.
func NewGroup(name string, tasks []*Task) (*Group, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("pvm: empty group %q", name)
	}
	return &Group{name: name, tasks: tasks}, nil
}

// Size reports the member count (pvm_gsize).
func (g *Group) Size() int { return len(g.tasks) }

// Rank reports the group rank of a task (pvm_getinst), or -1.
func (g *Group) Rank(t *Task) int {
	for i, m := range g.tasks {
		if m == t {
			return i
		}
	}
	return -1
}

// Collective message tags (reserved range).
const (
	tagBarrier = -100 + iota
	tagBcast
	tagReduce
)

// Barrier blocks the calling member until all members arrive
// (pvm_barrier): everyone reports to rank 0, rank 0 releases everyone.
// Must be called by every member exactly once per episode.
func (g *Group) Barrier(me *Task) {
	rank := g.Rank(me)
	if rank < 0 {
		panic(fmt.Sprintf("pvm: task %d not in group %q", me.ID(), g.name))
	}
	if g.Size() == 1 {
		return
	}
	if rank == 0 {
		for i := 1; i < g.Size(); i++ {
			me.RecvFrom(-1, tagBarrier)
		}
		for i := 1; i < g.Size(); i++ {
			me.Send(g.tasks[i].ID(), tagBarrier, 8, nil)
		}
	} else {
		me.Send(g.tasks[0].ID(), tagBarrier, 8, nil)
		me.RecvFrom(g.tasks[0].ID(), tagBarrier)
	}
}

// Bcast distributes data from the group root (rank 0) to every member
// (pvm_bcast); members pass their own buffer pointer and receive the
// root's payload back.
func (g *Group) Bcast(me *Task, data []float64) []float64 {
	rank := g.Rank(me)
	if rank < 0 {
		panic(fmt.Sprintf("pvm: task %d not in group %q", me.ID(), g.name))
	}
	if g.Size() == 1 {
		return data
	}
	if rank == 0 {
		for i := 1; i < g.Size(); i++ {
			me.Send(g.tasks[i].ID(), tagBcast, 8*len(data), data)
		}
		return data
	}
	msg := me.RecvFrom(g.tasks[0].ID(), tagBcast)
	return msg.Payload.([]float64)
}

// ReduceSum element-wise sums every member's vector at rank 0 and
// returns the result to all (pvm_reduce with PvmSum followed by a
// broadcast). All contributions must have equal length.
func (g *Group) ReduceSum(me *Task, data []float64) []float64 {
	rank := g.Rank(me)
	if rank < 0 {
		panic(fmt.Sprintf("pvm: task %d not in group %q", me.ID(), g.name))
	}
	if g.Size() == 1 {
		return data
	}
	if rank == 0 {
		acc := append([]float64(nil), data...)
		for i := 1; i < g.Size(); i++ {
			msg := me.RecvFrom(-1, tagReduce)
			v := msg.Payload.([]float64)
			if len(v) != len(acc) {
				panic(fmt.Sprintf("pvm: reduce length mismatch: %d vs %d", len(v), len(acc)))
			}
			// The reduction arithmetic costs one add per element.
			me.Thread().ComputeCycles(int64(len(v)))
			for j := range acc {
				acc[j] += v[j]
			}
		}
		for i := 1; i < g.Size(); i++ {
			me.Send(g.tasks[i].ID(), tagBcast, 8*len(acc), acc)
		}
		return acc
	}
	me.Send(g.tasks[0].ID(), tagReduce, 8*len(data), data)
	msg := me.RecvFrom(g.tasks[0].ID(), tagBcast)
	return msg.Payload.([]float64)
}
