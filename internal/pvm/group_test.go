package pvm

import (
	"math"
	"testing"

	"spp1000/internal/machine"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

// runGroup spins up n tasks across two hypernodes and runs body on each.
func runGroup(t *testing.T, n int, body func(g *Group, me *Task, rank int)) {
	t.Helper()
	m, err := machine.New(machine.Config{Hypernodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(m)
	tasks := make([]*Task, n)
	reg := m.K.NewSemaphore("reg", 0)
	ready := m.K.NewEvent("ready")
	var g *Group
	_, err = threads.RunTeam(m, n, threads.HighLocality, func(th *machine.Thread, tid int) {
		tasks[tid] = sys.AddTask(th)
		reg.V()
		if tid == 0 {
			for i := 0; i < n; i++ {
				reg.P(th.P)
			}
			var gerr error
			g, gerr = NewGroup("team", tasks)
			if gerr != nil {
				t.Error(gerr)
			}
			ready.Set()
		} else {
			ready.Wait(th.P)
		}
		body(g, tasks[tid], tid)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelectiveReceiveByTag(t *testing.T) {
	m, _ := machine.New(machine.Config{Hypernodes: 1})
	sys := NewSystem(m)
	ready := m.K.NewEvent("ready")
	var rx, tx *Task
	var got []int
	m.Spawn("rx", topology.MakeCPU(0, 1, 0), func(th *machine.Thread) {
		rx = sys.AddTask(th)
		ready.Set()
		// Receive tag 5 first even though tag 3 arrives earlier.
		got = append(got, rx.RecvFrom(-1, 5).Tag)
		got = append(got, rx.RecvFrom(-1, -1).Tag) // then the stashed 3
	})
	m.Spawn("tx", topology.MakeCPU(0, 0, 0), func(th *machine.Thread) {
		tx = sys.AddTask(th)
		ready.Wait(th.P)
		tx.Send(rx.ID(), 3, 64, nil)
		tx.Send(rx.ID(), 5, 64, nil)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 3 {
		t.Fatalf("selective receive order = %v, want [5 3]", got)
	}
}

func TestSelectiveReceiveBySource(t *testing.T) {
	m, _ := machine.New(machine.Config{Hypernodes: 1})
	sys := NewSystem(m)
	ready := m.K.NewEvent("ready")
	reg := m.K.NewSemaphore("reg", 0)
	tasks := make([]*Task, 3)
	var fromTwo int
	_, err := threads.RunTeam(m, 3, threads.HighLocality, func(th *machine.Thread, tid int) {
		tasks[tid] = sys.AddTask(th)
		reg.V()
		if tid == 0 {
			for i := 0; i < 3; i++ {
				reg.P(th.P)
			}
			ready.Set()
			fromTwo = tasks[0].RecvFrom(tasks[2].ID(), -1).Src
			tasks[0].Recv() // drain the other
		} else {
			ready.Wait(th.P)
			tasks[tid].Send(tasks[0].ID(), tid, 32, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fromTwo != tasks[2].ID() {
		t.Fatalf("RecvFrom(src=2) returned src %d", fromTwo)
	}
}

func TestGroupBarrier(t *testing.T) {
	arrived := make([]bool, 6)
	runGroup(t, 6, func(g *Group, me *Task, rank int) {
		me.Thread().ComputeCycles(int64(1000 * rank))
		arrived[rank] = true
		g.Barrier(me)
		// After the barrier everyone must have arrived.
		for r, a := range arrived {
			if !a {
				t.Errorf("rank %d passed the barrier before rank %d arrived", rank, r)
			}
		}
	})
}

func TestGroupBcast(t *testing.T) {
	data := []float64{3.14, 2.71}
	runGroup(t, 4, func(g *Group, me *Task, rank int) {
		var in []float64
		if rank == 0 {
			in = data
		}
		out := g.Bcast(me, in)
		if len(out) != 2 || out[0] != 3.14 || out[1] != 2.71 {
			t.Errorf("rank %d got %v", rank, out)
		}
	})
}

func TestGroupReduceSum(t *testing.T) {
	runGroup(t, 4, func(g *Group, me *Task, rank int) {
		in := []float64{float64(rank + 1), 1}
		out := g.ReduceSum(me, in)
		// 1+2+3+4 = 10; 1×4 = 4.
		if math.Abs(out[0]-10) > 1e-12 || math.Abs(out[1]-4) > 1e-12 {
			t.Errorf("rank %d reduce = %v, want [10 4]", rank, out)
		}
	})
}

func TestSingletonGroupShortCircuits(t *testing.T) {
	runGroup(t, 1, func(g *Group, me *Task, rank int) {
		g.Barrier(me)
		out := g.ReduceSum(me, []float64{7})
		if out[0] != 7 {
			t.Errorf("singleton reduce = %v", out)
		}
	})
}

func TestGroupValidation(t *testing.T) {
	if _, err := NewGroup("empty", nil); err == nil {
		t.Fatal("empty group should be rejected")
	}
}

func TestPackBufferRoundTrip(t *testing.T) {
	b := NewBuffer()
	b.PackInt([]int{1, 2, 3}).PackDouble([]float64{1.5}).PackString("hello")
	if b.Bytes() != 12+8+5 {
		t.Fatalf("packed bytes = %d", b.Bytes())
	}
	iv, err := b.UnpackInt()
	if err != nil || len(iv) != 3 || iv[2] != 3 {
		t.Fatalf("UnpackInt = %v, %v", iv, err)
	}
	dv, err := b.UnpackDouble()
	if err != nil || dv[0] != 1.5 {
		t.Fatalf("UnpackDouble = %v, %v", dv, err)
	}
	s, err := b.UnpackString()
	if err != nil || s != "hello" {
		t.Fatalf("UnpackString = %q, %v", s, err)
	}
	if _, err := b.UnpackInt(); err == nil {
		t.Fatal("unpack past end should fail")
	}
}

func TestPackBufferTypeMismatch(t *testing.T) {
	b := NewBuffer()
	b.PackInt([]int{1})
	if _, err := b.UnpackDouble(); err == nil {
		t.Fatal("type mismatch should fail")
	}
}

func TestSendRecvBuffer(t *testing.T) {
	m, _ := machine.New(machine.Config{Hypernodes: 1})
	sys := NewSystem(m)
	ready := m.K.NewEvent("ready")
	var rx *Task
	var got []float64
	m.Spawn("rx", topology.MakeCPU(0, 1, 0), func(th *machine.Thread) {
		rx = sys.AddTask(th)
		ready.Set()
		_, buf, err := rx.RecvBuffer()
		if err != nil {
			t.Error(err)
			return
		}
		got, _ = buf.UnpackDouble()
	})
	m.Spawn("tx", topology.MakeCPU(0, 0, 0), func(th *machine.Thread) {
		tx := sys.AddTask(th)
		ready.Wait(th.P)
		b := NewBuffer().PackDouble([]float64{9, 8, 7})
		tx.SendBuffer(rx.ID(), 1, b)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 9 {
		t.Fatalf("buffer payload = %v", got)
	}
}
