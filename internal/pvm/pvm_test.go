package pvm

import (
	"testing"

	"spp1000/internal/machine"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
)

// roundTrip measures a ping-pong of the given size between two CPUs.
func roundTrip(t *testing.T, a, b topology.CPUID, bytes int) sim.Cycles {
	t.Helper()
	m, err := machine.New(machine.Config{Hypernodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(m)
	var rt sim.Cycles
	ready := m.K.NewEvent("ready")

	var t0, t1 *Task
	m.Spawn("ping", a, func(th *machine.Thread) {
		t0 = sys.AddTask(th)
		ready.Wait(th.P)
		start := th.Now()
		t0.Send(t1.ID(), 1, bytes, nil)
		t0.Recv()
		rt = th.Now() - start
	})
	m.Spawn("pong", b, func(th *machine.Thread) {
		t1 = sys.AddTask(th)
		ready.Set()
		msg := t1.Recv()
		t1.Send(msg.Src, 2, bytes, nil)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestLocalRoundTripApprox30us(t *testing.T) {
	// Paper Fig. 4: local round trip ≈30 µs below 8 KB.
	rt := roundTrip(t, topology.MakeCPU(0, 0, 0), topology.MakeCPU(0, 1, 0), 1024)
	if rt.Micros() < 20 || rt.Micros() > 40 {
		t.Fatalf("local RT = %.1f µs, want ≈30", rt.Micros())
	}
}

func TestGlobalRoundTripApprox70us(t *testing.T) {
	// Paper Fig. 4: inter-hypernode round trip ≈70 µs below 8 KB.
	rt := roundTrip(t, topology.MakeCPU(0, 0, 0), topology.MakeCPU(1, 0, 0), 1024)
	if rt.Micros() < 55 || rt.Micros() > 90 {
		t.Fatalf("global RT = %.1f µs, want ≈70", rt.Micros())
	}
}

func TestGlobalLocalRatioApprox23(t *testing.T) {
	local := roundTrip(t, topology.MakeCPU(0, 0, 0), topology.MakeCPU(0, 1, 0), 1024)
	global := roundTrip(t, topology.MakeCPU(0, 0, 0), topology.MakeCPU(1, 0, 0), 1024)
	ratio := global.Micros() / local.Micros()
	if ratio < 1.8 || ratio > 3.0 {
		t.Fatalf("global/local RT ratio = %.2f, want ≈2.3", ratio)
	}
}

func TestFlatBelow8KThenKnee(t *testing.T) {
	small := roundTrip(t, topology.MakeCPU(0, 0, 0), topology.MakeCPU(0, 1, 0), 256)
	at8k := roundTrip(t, topology.MakeCPU(0, 0, 0), topology.MakeCPU(0, 1, 0), 8192)
	at32k := roundTrip(t, topology.MakeCPU(0, 0, 0), topology.MakeCPU(0, 1, 0), 32768)
	// Below the knee: near-constant (within ~30%).
	if at8k.Micros() > small.Micros()*1.4 {
		t.Fatalf("RT grew too fast below 8 KB: %.1f -> %.1f µs", small.Micros(), at8k.Micros())
	}
	// Beyond the knee: substantial growth.
	if at32k.Micros() < at8k.Micros()*1.8 {
		t.Fatalf("no knee: 8 KB %.1f µs vs 32 KB %.1f µs", at8k.Micros(), at32k.Micros())
	}
}

func TestMessageOrderPreserved(t *testing.T) {
	m, _ := machine.New(machine.Config{Hypernodes: 1})
	sys := NewSystem(m)
	var got []int
	ready := m.K.NewEvent("ready")
	var sender, receiver *Task
	m.Spawn("rx", topology.MakeCPU(0, 1, 0), func(th *machine.Thread) {
		receiver = sys.AddTask(th)
		ready.Set()
		for i := 0; i < 5; i++ {
			got = append(got, receiver.Recv().Tag)
		}
	})
	m.Spawn("tx", topology.MakeCPU(0, 0, 0), func(th *machine.Thread) {
		sender = sys.AddTask(th)
		ready.Wait(th.P)
		for i := 0; i < 5; i++ {
			sender.Send(receiver.ID(), i, 64, nil)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, tag := range got {
		if tag != i {
			t.Fatalf("messages reordered: %v", got)
		}
	}
}

func TestPayloadCarried(t *testing.T) {
	m, _ := machine.New(machine.Config{Hypernodes: 1})
	sys := NewSystem(m)
	data := []float64{1, 2, 3}
	var out []float64
	ready := m.K.NewEvent("ready")
	var rx *Task
	m.Spawn("rx", topology.MakeCPU(0, 1, 0), func(th *machine.Thread) {
		rx = sys.AddTask(th)
		ready.Set()
		out = rx.Recv().Payload.([]float64)
	})
	m.Spawn("tx", topology.MakeCPU(0, 0, 0), func(th *machine.Thread) {
		tx := sys.AddTask(th)
		ready.Wait(th.P)
		tx.Send(rx.ID(), 0, len(data)*8, data)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[2] != 3 {
		t.Fatalf("payload lost: %v", out)
	}
}

func TestTryRecvAndPending(t *testing.T) {
	m, _ := machine.New(machine.Config{Hypernodes: 1})
	sys := NewSystem(m)
	ready := m.K.NewEvent("ready")
	var rx *Task
	okEmpty := true
	var gotLater bool
	m.Spawn("rx", topology.MakeCPU(0, 1, 0), func(th *machine.Thread) {
		rx = sys.AddTask(th)
		if _, ok := rx.TryRecv(); ok {
			okEmpty = false
		}
		ready.Set()
		th.Delay(100000)
		if rx.Pending() != 1 {
			t.Errorf("pending = %d, want 1", rx.Pending())
		}
		_, gotLater = rx.TryRecv()
	})
	m.Spawn("tx", topology.MakeCPU(0, 0, 0), func(th *machine.Thread) {
		tx := sys.AddTask(th)
		ready.Wait(th.P)
		tx.Send(rx.ID(), 0, 64, nil)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !okEmpty {
		t.Fatal("TryRecv on empty mailbox should report false")
	}
	if !gotLater {
		t.Fatal("TryRecv should find the delivered message")
	}
}

func TestSendToUnknownTaskPanics(t *testing.T) {
	m, _ := machine.New(machine.Config{Hypernodes: 1})
	sys := NewSystem(m)
	panicked := false
	m.Spawn("tx", topology.MakeCPU(0, 0, 0), func(th *machine.Thread) {
		tx := sys.AddTask(th)
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		tx.Send(99, 0, 64, nil)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("expected panic")
	}
}

func TestStats(t *testing.T) {
	m, _ := machine.New(machine.Config{Hypernodes: 1})
	sys := NewSystem(m)
	ready := m.K.NewEvent("ready")
	var rx, tx *Task
	m.Spawn("rx", topology.MakeCPU(0, 1, 0), func(th *machine.Thread) {
		rx = sys.AddTask(th)
		ready.Set()
		rx.Recv()
		rx.Recv()
	})
	m.Spawn("tx", topology.MakeCPU(0, 0, 0), func(th *machine.Thread) {
		tx = sys.AddTask(th)
		ready.Wait(th.P)
		tx.Send(rx.ID(), 0, 100, nil)
		tx.Send(rx.ID(), 1, 200, nil)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if tx.Sent != 2 || tx.BytesSent != 300 || rx.Received != 2 {
		t.Fatalf("stats: sent=%d bytes=%d recv=%d", tx.Sent, tx.BytesSent, rx.Received)
	}
}
