package pvm

import "fmt"

// Buffer is a PVM3-style typed pack buffer: the sender packs typed data
// (pvm_pkint, pvm_pkdouble, ...), the receiver unpacks in the same
// order. On the SPP-1000 the buffer lives in shared memory — packing is
// the only copy on the fast path (§3.1).
type Buffer struct {
	items []interface{}
	next  int
	bytes int
}

// NewBuffer returns an empty pack buffer (pvm_initsend).
func NewBuffer() *Buffer { return &Buffer{} }

// Bytes reports the packed payload size.
func (b *Buffer) Bytes() int { return b.bytes }

// PackInt packs a slice of ints (pvm_pkint).
func (b *Buffer) PackInt(v []int) *Buffer {
	cp := append([]int(nil), v...)
	b.items = append(b.items, cp)
	b.bytes += 4 * len(v)
	return b
}

// PackDouble packs a slice of float64 (pvm_pkdouble).
func (b *Buffer) PackDouble(v []float64) *Buffer {
	cp := append([]float64(nil), v...)
	b.items = append(b.items, cp)
	b.bytes += 8 * len(v)
	return b
}

// PackString packs a string (pvm_pkstr).
func (b *Buffer) PackString(s string) *Buffer {
	b.items = append(b.items, s)
	b.bytes += len(s)
	return b
}

// UnpackInt unpacks the next item as ints (pvm_upkint).
func (b *Buffer) UnpackInt() ([]int, error) {
	v, err := b.take()
	if err != nil {
		return nil, err
	}
	iv, ok := v.([]int)
	if !ok {
		return nil, fmt.Errorf("pvm: unpack type mismatch: have %T, want []int", v)
	}
	return iv, nil
}

// UnpackDouble unpacks the next item as float64s (pvm_upkdouble).
func (b *Buffer) UnpackDouble() ([]float64, error) {
	v, err := b.take()
	if err != nil {
		return nil, err
	}
	fv, ok := v.([]float64)
	if !ok {
		return nil, fmt.Errorf("pvm: unpack type mismatch: have %T, want []float64", v)
	}
	return fv, nil
}

// UnpackString unpacks the next item as a string (pvm_upkstr).
func (b *Buffer) UnpackString() (string, error) {
	v, err := b.take()
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("pvm: unpack type mismatch: have %T, want string", v)
	}
	return s, nil
}

func (b *Buffer) take() (interface{}, error) {
	if b.next >= len(b.items) {
		return nil, fmt.Errorf("pvm: unpack past end of buffer")
	}
	v := b.items[b.next]
	b.next++
	return v, nil
}

// SendBuffer transmits a pack buffer (pvm_send with the active buffer).
func (t *Task) SendBuffer(dst, tag int, b *Buffer) {
	t.Send(dst, tag, b.Bytes(), b)
}

// RecvBuffer blocks for the next message carrying a pack buffer.
func (t *Task) RecvBuffer() (*Message, *Buffer, error) {
	msg := t.Recv()
	buf, ok := msg.Payload.(*Buffer)
	if !ok {
		return msg, nil, fmt.Errorf("pvm: message payload is %T, not a pack buffer", msg.Payload)
	}
	return msg, buf, nil
}
