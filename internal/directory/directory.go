// Package directory implements the intra-hypernode cache-coherence
// directory of the SPP-1000: a direct-mapped, DASH-like tag store that
// records, for every memory line cached inside the hypernode, which of
// the eight local processors hold copies and which (at most one) holds
// it dirty (paper §2.4).
package directory

import (
	"fmt"

	"spp1000/internal/counters"
	"spp1000/internal/topology"
)

// entry is the directory state for one line.
type entry struct {
	presence uint8 // bit per local CPU (0..7)
	owner    int8  // local CPU holding the line dirty, or -1
}

// Stats counts directory actions.
type Stats struct {
	Lookups       int64
	Invalidations int64 // copies invalidated
	Interventions int64 // dirty-owner fetches
}

// hooks are the optional PMU-style counter handles, nil (free no-ops)
// until AttachCounters.
type hooks struct {
	lookups       *counters.Counter
	invalidations *counters.Counter
	interventions *counters.Counter
	purges        *counters.Counter
	invalFanout   *counters.Histogram
}

// Directory tracks every line cached within one hypernode.
type Directory struct {
	hypernode int
	entries   map[topology.LineKey]entry
	Stats     Stats
	ctr       hooks
}

// AttachCounters mirrors this directory's actions into the group:
// lookups, invalidations (copies killed), interventions (dirty-owner
// fetches), purges (whole-line SCI kills), and the inval_fanout
// histogram of copies killed per coherence action (only actions that
// killed at least one copy are observed). A nil group detaches.
func (d *Directory) AttachCounters(g *counters.Group) {
	d.ctr = hooks{
		lookups:       g.Counter("lookups"),
		invalidations: g.Counter("invalidations"),
		interventions: g.Counter("interventions"),
		purges:        g.Counter("purges"),
		invalFanout:   g.Histogram("inval_fanout"),
	}
}

// New returns an empty directory for the given hypernode.
func New(hypernode int) *Directory {
	return &Directory{hypernode: hypernode, entries: make(map[topology.LineKey]entry)}
}

// Hypernode reports which hypernode this directory serves.
func (d *Directory) Hypernode() int { return d.hypernode }

// localIndex converts a CPUID to the 0..7 index inside this hypernode.
func (d *Directory) localIndex(cpu topology.CPUID) int {
	if cpu.Hypernode() != d.hypernode {
		panic(fmt.Sprintf("directory hn%d asked about foreign %v", d.hypernode, cpu))
	}
	return cpu.FU()*topology.CPUsPerFU + cpu.Local()
}

// Sharers reports the local CPUs currently holding the line.
func (d *Directory) Sharers(key topology.LineKey) []topology.CPUID {
	e, ok := d.entries[key]
	if !ok {
		return nil
	}
	var out []topology.CPUID
	for i := 0; i < topology.CPUsPerNode; i++ {
		if e.presence&(1<<i) != 0 {
			out = append(out, topology.MakeCPU(d.hypernode, i/topology.CPUsPerFU, i%topology.CPUsPerFU))
		}
	}
	return out
}

// Owner reports the local CPU holding the line dirty, or ok=false.
func (d *Directory) Owner(key topology.LineKey) (topology.CPUID, bool) {
	e, ok := d.entries[key]
	if !ok || e.owner < 0 {
		return 0, false
	}
	o := int(e.owner)
	return topology.MakeCPU(d.hypernode, o/topology.CPUsPerFU, o%topology.CPUsPerFU), true
}

// ReadActions describes what a read miss requires of the hypernode.
type ReadActions struct {
	// DirtyOwner, if valid, must supply the line (intervention) before
	// memory can serve it.
	DirtyOwner    topology.CPUID
	HasDirtyOwner bool
}

// RecordRead notes that cpu now caches the line (shared) and reports the
// coherence work a read miss triggers.
func (d *Directory) RecordRead(key topology.LineKey, cpu topology.CPUID) ReadActions {
	d.Stats.Lookups++
	d.ctr.lookups.Inc()
	idx := d.localIndex(cpu)
	e, ok := d.entries[key]
	if !ok {
		e.owner = -1
	}
	var acts ReadActions
	if e.owner >= 0 && int(e.owner) != idx {
		// A different local CPU holds it dirty: intervene, downgrade.
		o := int(e.owner)
		acts.DirtyOwner = topology.MakeCPU(d.hypernode, o/topology.CPUsPerFU, o%topology.CPUsPerFU)
		acts.HasDirtyOwner = true
		d.Stats.Interventions++
		d.ctr.interventions.Inc()
		e.owner = -1
	}
	e.presence |= 1 << idx
	d.entries[key] = e
	return acts
}

// WriteActions describes what a write (ownership acquisition) requires.
type WriteActions struct {
	// InvalidateLocal are the other local CPUs whose copies must die.
	InvalidateLocal []topology.CPUID
	// PreviousOwner, if valid, must first write the dirty line back.
	PreviousOwner    topology.CPUID
	HasPreviousOwner bool
}

// RecordWrite makes cpu the exclusive dirty owner and reports the copies
// that had to be invalidated.
func (d *Directory) RecordWrite(key topology.LineKey, cpu topology.CPUID) WriteActions {
	d.Stats.Lookups++
	d.ctr.lookups.Inc()
	idx := d.localIndex(cpu)
	e, ok := d.entries[key]
	if !ok {
		e.owner = -1
	}
	var acts WriteActions
	if e.owner >= 0 && int(e.owner) != idx {
		o := int(e.owner)
		acts.PreviousOwner = topology.MakeCPU(d.hypernode, o/topology.CPUsPerFU, o%topology.CPUsPerFU)
		acts.HasPreviousOwner = true
		d.Stats.Interventions++
		d.ctr.interventions.Inc()
	}
	for i := 0; i < topology.CPUsPerNode; i++ {
		if i == idx {
			continue
		}
		if e.presence&(1<<i) != 0 {
			acts.InvalidateLocal = append(acts.InvalidateLocal,
				topology.MakeCPU(d.hypernode, i/topology.CPUsPerFU, i%topology.CPUsPerFU))
			d.Stats.Invalidations++
		}
	}
	if n := len(acts.InvalidateLocal); n > 0 {
		d.ctr.invalidations.Add(int64(n))
		d.ctr.invalFanout.Observe(int64(n))
	}
	e.presence = 1 << idx
	e.owner = int8(idx)
	d.entries[key] = e
	return acts
}

// DropCPU removes cpu's presence (its cache evicted the line).
func (d *Directory) DropCPU(key topology.LineKey, cpu topology.CPUID) {
	e, ok := d.entries[key]
	if !ok {
		return
	}
	idx := d.localIndex(cpu)
	e.presence &^= 1 << idx
	if e.owner == int8(idx) {
		e.owner = -1
	}
	if e.presence == 0 {
		delete(d.entries, key)
	} else {
		d.entries[key] = e
	}
}

// PurgeLine removes the line entirely (an SCI invalidation arrived) and
// returns the local CPUs whose caches must be invalidated.
func (d *Directory) PurgeLine(key topology.LineKey) []topology.CPUID {
	sharers := d.Sharers(key)
	d.Stats.Invalidations += int64(len(sharers))
	d.ctr.purges.Inc()
	if n := len(sharers); n > 0 {
		d.ctr.invalidations.Add(int64(n))
		d.ctr.invalFanout.Observe(int64(n))
	}
	delete(d.entries, key)
	return sharers
}

// Entries reports the number of tracked lines.
func (d *Directory) Entries() int { return len(d.entries) }

// CheckInvariants validates internal consistency; it returns an error
// describing the first violation found (used by property tests).
func (d *Directory) CheckInvariants() error {
	//simlint:allow determinism any one violation suffices; the walk never touches simulator state or rendered output
	for key, e := range d.entries {
		if e.presence == 0 {
			return fmt.Errorf("line %v tracked with empty presence", key)
		}
		if e.owner >= 0 {
			if e.presence&(1<<uint(e.owner)) == 0 {
				return fmt.Errorf("line %v: owner %d not in presence mask %08b", key, e.owner, e.presence)
			}
			if e.presence != 1<<uint(e.owner) {
				return fmt.Errorf("line %v: dirty but shared (owner %d, mask %08b)", key, e.owner, e.presence)
			}
		}
	}
	return nil
}
