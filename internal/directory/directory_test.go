package directory

import (
	"testing"
	"testing/quick"

	"spp1000/internal/rng"
	"spp1000/internal/topology"
)

var lineA = topology.LineKey{Space: 1, Line: 100}

func TestReadAddsSharer(t *testing.T) {
	d := New(0)
	cpu := topology.MakeCPU(0, 1, 0)
	acts := d.RecordRead(lineA, cpu)
	if acts.HasDirtyOwner {
		t.Fatal("cold read should find no dirty owner")
	}
	sh := d.Sharers(lineA)
	if len(sh) != 1 || sh[0] != cpu {
		t.Fatalf("sharers = %v, want [%v]", sh, cpu)
	}
}

func TestWriteInvalidatesOtherSharers(t *testing.T) {
	d := New(0)
	readers := []topology.CPUID{
		topology.MakeCPU(0, 0, 0), topology.MakeCPU(0, 1, 1), topology.MakeCPU(0, 3, 0),
	}
	for _, c := range readers {
		d.RecordRead(lineA, c)
	}
	writer := topology.MakeCPU(0, 2, 0)
	acts := d.RecordWrite(lineA, writer)
	if len(acts.InvalidateLocal) != 3 {
		t.Fatalf("invalidated %d copies, want 3", len(acts.InvalidateLocal))
	}
	if owner, ok := d.Owner(lineA); !ok || owner != writer {
		t.Fatalf("owner = %v,%v, want %v", owner, ok, writer)
	}
	if len(d.Sharers(lineA)) != 1 {
		t.Fatal("write should leave exactly one presence bit")
	}
}

func TestReadAfterWriteIntervenes(t *testing.T) {
	d := New(0)
	writer := topology.MakeCPU(0, 0, 0)
	d.RecordWrite(lineA, writer)
	reader := topology.MakeCPU(0, 1, 0)
	acts := d.RecordRead(lineA, reader)
	if !acts.HasDirtyOwner || acts.DirtyOwner != writer {
		t.Fatalf("read should intervene on dirty owner; got %+v", acts)
	}
	if _, ok := d.Owner(lineA); ok {
		t.Fatal("line should be clean (shared) after the intervention")
	}
	if len(d.Sharers(lineA)) != 2 {
		t.Fatalf("sharers = %v, want both CPUs", d.Sharers(lineA))
	}
}

func TestWriteAfterWriteChangesOwner(t *testing.T) {
	d := New(0)
	first := topology.MakeCPU(0, 0, 0)
	second := topology.MakeCPU(0, 2, 1)
	d.RecordWrite(lineA, first)
	acts := d.RecordWrite(lineA, second)
	if !acts.HasPreviousOwner || acts.PreviousOwner != first {
		t.Fatalf("expected writeback from %v, got %+v", first, acts)
	}
	if owner, _ := d.Owner(lineA); owner != second {
		t.Fatalf("owner = %v, want %v", owner, second)
	}
}

func TestRewriteByOwnerIsQuiet(t *testing.T) {
	d := New(0)
	cpu := topology.MakeCPU(0, 0, 0)
	d.RecordWrite(lineA, cpu)
	acts := d.RecordWrite(lineA, cpu)
	if acts.HasPreviousOwner || len(acts.InvalidateLocal) != 0 {
		t.Fatalf("owner rewriting its own line should cost nothing: %+v", acts)
	}
}

func TestDropCPU(t *testing.T) {
	d := New(0)
	a, b := topology.MakeCPU(0, 0, 0), topology.MakeCPU(0, 1, 0)
	d.RecordRead(lineA, a)
	d.RecordRead(lineA, b)
	d.DropCPU(lineA, a)
	if sh := d.Sharers(lineA); len(sh) != 1 || sh[0] != b {
		t.Fatalf("sharers after drop = %v", sh)
	}
	d.DropCPU(lineA, b)
	if d.Entries() != 0 {
		t.Fatal("empty line should be untracked")
	}
	// Dropping from an untracked line must be a no-op.
	d.DropCPU(lineA, a)
}

func TestPurgeLine(t *testing.T) {
	d := New(1)
	a, b := topology.MakeCPU(1, 0, 0), topology.MakeCPU(1, 3, 1)
	d.RecordRead(lineA, a)
	d.RecordRead(lineA, b)
	victims := d.PurgeLine(lineA)
	if len(victims) != 2 {
		t.Fatalf("purge returned %v, want 2 victims", victims)
	}
	if d.Entries() != 0 {
		t.Fatal("purged line should be gone")
	}
}

func TestForeignCPUPanics(t *testing.T) {
	d := New(0)
	defer func() {
		if recover() == nil {
			t.Fatal("directory must reject CPUs from other hypernodes")
		}
	}()
	d.RecordRead(lineA, topology.MakeCPU(1, 0, 0))
}

// Property: after any sequence of reads/writes/drops, invariants hold:
// presence masks non-empty, dirty lines exclusively owned.
func TestInvariantsUnderRandomOps(t *testing.T) {
	prop := func(seed int64) bool {
		rnd := rng.New(uint64(seed))
		d := New(0)
		lines := []topology.LineKey{
			{Space: 1, Line: 1}, {Space: 1, Line: 2}, {Space: 2, Line: 1},
		}
		for i := 0; i < 200; i++ {
			key := lines[rnd.Intn(len(lines))]
			cpu := topology.CPUID(rnd.Intn(8))
			switch rnd.Intn(3) {
			case 0:
				d.RecordRead(key, cpu)
			case 1:
				d.RecordWrite(key, cpu)
			case 2:
				d.DropCPU(key, cpu)
			}
			if err := d.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a write always leaves the writer as sole sharer and owner.
func TestWriteExclusivityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rnd := rng.New(uint64(seed))
		d := New(0)
		key := topology.LineKey{Space: 3, Line: uint64(rnd.Intn(100))}
		for i := 0; i < 10; i++ {
			d.RecordRead(key, topology.CPUID(rnd.Intn(8)))
		}
		w := topology.CPUID(rnd.Intn(8))
		d.RecordWrite(key, w)
		sh := d.Sharers(key)
		owner, ok := d.Owner(key)
		return len(sh) == 1 && sh[0] == w && ok && owner == w
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
