// Package ring models the four parallel unidirectional SCI ring networks
// joining the hypernodes (paper §2.5). Functional unit i of every
// hypernode attaches to ring i, so a line homed on FU i of a remote
// hypernode is always reached over ring i. Each ring is a shared medium:
// a packet occupies the ring for its transit time, and concurrent packets
// queue — the contention term the paper flags as the compounding factor
// for a "more heavily burdened system".
package ring

import (
	"fmt"

	"spp1000/internal/counters"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
)

// hooks are the optional PMU-style per-link counter handles, inert
// until AttachCounters.
type hooks struct {
	attached bool
	packets  [topology.NumRings]*counters.Counter
	busy     [topology.NumRings]*counters.Counter
	queue    [topology.NumRings]*counters.Counter
	hops     *counters.Histogram
}

// Network is the set of four rings of one machine.
type Network struct {
	topo    topology.Topology
	params  topology.Params
	rings   [topology.NumRings]sim.Resource
	packets int64
	ctr     hooks
}

// AttachCounters mirrors ring traffic into the group, per link:
// r<i>.packets (packets injected), r<i>.busy_cycles (link service
// time), r<i>.queue_cycles (time packets waited behind earlier
// traffic), plus a machine-wide hops histogram of per-packet hop
// counts. A nil group detaches.
func (n *Network) AttachCounters(g *counters.Group) {
	n.ctr = hooks{attached: g != nil}
	for i := 0; i < topology.NumRings; i++ {
		n.ctr.packets[i] = g.Counter(fmt.Sprintf("r%d.packets", i))
		n.ctr.busy[i] = g.Counter(fmt.Sprintf("r%d.busy_cycles", i))
		n.ctr.queue[i] = g.Counter(fmt.Sprintf("r%d.queue_cycles", i))
	}
	n.ctr.hops = g.Histogram("hops")
}

// New returns an idle ring network.
func New(topo topology.Topology, params topology.Params) *Network {
	return &Network{topo: topo, params: params}
}

// LineSlotCycles is the ring occupancy of one extra cache-line-sized
// payload slot (≈600 MB/s SCI link bandwidth: 32 B ≈ 53 ns ≈ 5 cycles).
const LineSlotCycles = 5

// TransitCycles reports the unloaded one-way transit time of a packet
// from hypernode src to dst: injection/ejection handling plus per-hop
// propagation. Payload beyond one cache line adds line-sized ring slots.
func (n *Network) TransitCycles(src, dst, payloadBytes int) sim.Cycles {
	hops := n.topo.RingHops(src, dst)
	lines := (payloadBytes + topology.CacheLineBytes - 1) / topology.CacheLineBytes
	if lines < 1 {
		lines = 1
	}
	return sim.Cycles(n.params.RingPacketFixed + int64(hops)*n.params.RingHop + int64(lines-1)*LineSlotCycles)
}

// Send books a one-way packet on the given ring starting at now and
// returns its arrival time, including queueing behind earlier packets.
func (n *Network) Send(now sim.Cycles, ringIdx, src, dst, payloadBytes int) sim.Cycles {
	transit := n.TransitCycles(src, dst, payloadBytes)
	n.packets++
	done := n.rings[ringIdx].Reserve(now, transit)
	if n.ctr.attached {
		n.ctr.packets[ringIdx].Inc()
		n.ctr.busy[ringIdx].Add(int64(transit))
		n.ctr.queue[ringIdx].Add(int64(done - now - transit))
		n.ctr.hops.Observe(int64(n.topo.RingHops(src, dst)))
	}
	return done
}

// RoundTrip books a request/response pair (request payloadBytes out,
// one cache line back) and returns the completion time.
func (n *Network) RoundTrip(now sim.Cycles, ringIdx, src, dst, payloadBytes int) sim.Cycles {
	arrive := n.Send(now, ringIdx, src, dst, payloadBytes)
	return n.Send(arrive, ringIdx, dst, src, topology.CacheLineBytes)
}

// Packets reports the number of packets sent.
func (n *Network) Packets() int64 { return n.packets }

// Busy reports accumulated service time on one ring.
func (n *Network) Busy(ringIdx int) sim.Cycles { return n.rings[ringIdx].Busy() }

// Reset clears all ring horizons.
func (n *Network) Reset() {
	for i := range n.rings {
		n.rings[i].Reset()
	}
	n.packets = 0
}
