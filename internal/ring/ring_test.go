package ring

import (
	"testing"

	"spp1000/internal/topology"
)

func network(t *testing.T, nodes int) *Network {
	topo, err := topology.New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	return New(topo, topology.DefaultParams())
}

func TestTransitScalesWithHops(t *testing.T) {
	n := network(t, 8)
	one := n.TransitCycles(0, 1, 32)
	three := n.TransitCycles(0, 3, 32)
	if three <= one {
		t.Fatalf("3 hops (%d) should exceed 1 hop (%d)", three, one)
	}
	p := topology.DefaultParams()
	want := p.RingPacketFixed + p.RingHop
	if int64(one) != want {
		t.Fatalf("1-hop line transit = %d, want %d", one, want)
	}
}

func TestTransitWrapsAround(t *testing.T) {
	n := network(t, 4)
	// hn3 -> hn0 is one hop on a unidirectional ring.
	if n.TransitCycles(3, 0, 32) != n.TransitCycles(0, 1, 32) {
		t.Fatal("wraparound hop count wrong")
	}
}

func TestPayloadAddsSlots(t *testing.T) {
	n := network(t, 2)
	line := n.TransitCycles(0, 1, 32)
	page := n.TransitCycles(0, 1, 4096)
	if page <= line {
		t.Fatal("larger payloads must take longer")
	}
}

func TestContentionQueues(t *testing.T) {
	n := network(t, 2)
	a := n.Send(0, 0, 0, 1, 32)
	b := n.Send(0, 0, 0, 1, 32) // same ring, same instant
	if b != 2*a {
		t.Fatalf("second packet should queue: %d, want %d", b, 2*a)
	}
	c := n.Send(0, 1, 0, 1, 32) // different ring
	if c != a {
		t.Fatalf("other ring should be free: %d, want %d", c, a)
	}
}

func TestRoundTrip(t *testing.T) {
	n := network(t, 2)
	rt := n.RoundTrip(0, 0, 0, 1, 32)
	oneWay := n.TransitCycles(0, 1, 32)
	if rt != 2*oneWay {
		t.Fatalf("round trip = %d, want %d", rt, 2*oneWay)
	}
	if n.Packets() != 2 {
		t.Fatalf("packets = %d, want 2", n.Packets())
	}
}

func TestReset(t *testing.T) {
	n := network(t, 2)
	n.Send(0, 0, 0, 1, 32)
	n.Reset()
	if n.Busy(0) != 0 || n.Packets() != 0 {
		t.Fatal("reset should clear state")
	}
}
