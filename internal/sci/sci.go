// Package sci implements the inter-hypernode coherence layer of the
// SPP-1000: the Scalable Coherent Interface distributed linked-list
// directory (IEEE 1596), as realized by the machine's CCMC hardware
// (paper §2.5). For every globally shared cache line it maintains the
// sharing list of hypernodes holding buffered copies; the home hypernode
// holds the list head pointer. New sharers prepend at the head; a writer
// purges the whole list, walking it node by node — which is exactly the
// cost structure the paper's barrier measurements expose.
//
// Each hypernode also owns a "global cache buffer": the partition of
// functional-unit memory that holds line copies fetched from remote
// hypernodes, so repeated access from inside a hypernode is served at
// crossbar cost rather than ring cost.
package sci

import (
	"fmt"

	"spp1000/internal/counters"
	"spp1000/internal/topology"
)

// list is the sharing state of one line: an ordered list of hypernode
// ids, head first (most recently attached).
type list struct {
	home    int
	sharers []int // invariant: no duplicates, never contains entries >= nodes
}

// Stats counts protocol actions.
type Stats struct {
	Attaches     int64 // sharing-list insertions
	Detaches     int64 // rollouts (eviction from a buffer)
	Purges       int64 // whole-list invalidation walks
	PurgedCopies int64 // list nodes visited by purges
}

// hooks are the optional PMU-style counter handles, nil (free no-ops)
// until AttachCounters.
type hooks struct {
	attaches     *counters.Counter
	detaches     *counters.Counter
	purges       *counters.Counter
	purgedCopies *counters.Counter
	purgeWalk    *counters.Histogram
}

// Protocol is the global SCI coherence state for one machine.
type Protocol struct {
	nodes int
	lines map[topology.LineKey]*list
	// buffers[hn] is the set of remote lines currently held in
	// hypernode hn's global cache buffer.
	buffers []map[topology.LineKey]bool
	Stats   Stats
	ctr     hooks
}

// AttachCounters mirrors the protocol actions into the group: attaches,
// detaches, purges, purged_copies, and the purge_walk histogram of
// sharing-list nodes visited per purge — the serialized walk length that
// dominates the paper's cross-hypernode barrier cost. A nil group
// detaches.
func (p *Protocol) AttachCounters(g *counters.Group) {
	p.ctr = hooks{
		attaches:     g.Counter("attaches"),
		detaches:     g.Counter("detaches"),
		purges:       g.Counter("purges"),
		purgedCopies: g.Counter("purged_copies"),
		purgeWalk:    g.Histogram("purge_walk"),
	}
}

// New returns the protocol state for a machine with n hypernodes.
func New(n int) *Protocol {
	p := &Protocol{
		nodes:   n,
		lines:   make(map[topology.LineKey]*list),
		buffers: make([]map[topology.LineKey]bool, n),
	}
	for i := range p.buffers {
		p.buffers[i] = make(map[topology.LineKey]bool)
	}
	return p
}

// InBuffer reports whether hypernode hn holds a buffered copy of the line.
func (p *Protocol) InBuffer(hn int, key topology.LineKey) bool {
	return p.buffers[hn][key]
}

// Sharers returns the sharing list (head first), excluding the home.
func (p *Protocol) Sharers(key topology.LineKey) []int {
	l, ok := p.lines[key]
	if !ok {
		return nil
	}
	out := make([]int, len(l.sharers))
	copy(out, l.sharers)
	return out
}

// Attach records that hypernode hn fetched the line from its home and
// now buffers a copy. It returns the position at which hn entered the
// list (0 = head; SCI prepends, so this is always 0 for a new sharer).
// Attaching an existing sharer is a no-op returning its position.
func (p *Protocol) Attach(key topology.LineKey, home, hn int) int {
	p.check(home)
	p.check(hn)
	if hn == home {
		return -1 // the home does not buffer its own lines
	}
	l, ok := p.lines[key]
	if !ok {
		l = &list{home: home}
		p.lines[key] = l
	}
	for i, s := range l.sharers {
		if s == hn {
			return i
		}
	}
	l.sharers = append([]int{hn}, l.sharers...)
	p.buffers[hn][key] = true
	p.Stats.Attaches++
	p.ctr.attaches.Inc()
	return 0
}

// Detach removes hypernode hn from the sharing list (a buffer rollout).
// SCI rollout requires patching the neighbours' pointers; the caller
// charges the corresponding ring transactions. It reports whether hn
// was present.
func (p *Protocol) Detach(key topology.LineKey, hn int) bool {
	l, ok := p.lines[key]
	if !ok {
		return false
	}
	for i, s := range l.sharers {
		if s == hn {
			l.sharers = append(l.sharers[:i], l.sharers[i+1:]...)
			delete(p.buffers[hn], key)
			p.Stats.Detaches++
			p.ctr.detaches.Inc()
			if len(l.sharers) == 0 {
				delete(p.lines, key)
			}
			return true
		}
	}
	return false
}

// Purge invalidates every buffered copy of the line: the writer walks the
// sharing list from the head, invalidating one node at a time. It returns
// the hypernodes visited, in walk order; the caller charges one list-visit
// plus ring transit per entry and drops the victims' buffered copies.
func (p *Protocol) Purge(key topology.LineKey) []int {
	l, ok := p.lines[key]
	if !ok {
		return nil
	}
	victims := make([]int, len(l.sharers))
	copy(victims, l.sharers)
	for _, hn := range victims {
		delete(p.buffers[hn], key)
	}
	delete(p.lines, key)
	p.Stats.Purges++
	p.Stats.PurgedCopies += int64(len(victims))
	p.ctr.purges.Inc()
	p.ctr.purgedCopies.Add(int64(len(victims)))
	p.ctr.purgeWalk.Observe(int64(len(victims)))
	return victims
}

// PurgeExcept is Purge but keeps hypernode keep as the sole sharer
// (the writer's own hypernode retains its — now exclusive — copy).
func (p *Protocol) PurgeExcept(key topology.LineKey, keep int) []int {
	l, ok := p.lines[key]
	if !ok {
		return nil
	}
	var victims []int
	kept := false
	for _, hn := range l.sharers {
		if hn == keep {
			kept = true
			continue
		}
		victims = append(victims, hn)
		delete(p.buffers[hn], key)
	}
	if kept {
		l.sharers = []int{keep}
	} else {
		delete(p.lines, key)
	}
	p.Stats.Purges++
	p.Stats.PurgedCopies += int64(len(victims))
	p.ctr.purges.Inc()
	p.ctr.purgedCopies.Add(int64(len(victims)))
	p.ctr.purgeWalk.Observe(int64(len(victims)))
	return victims
}

// ListLength reports the sharing-list length for the line.
func (p *Protocol) ListLength(key topology.LineKey) int {
	l, ok := p.lines[key]
	if !ok {
		return 0
	}
	return len(l.sharers)
}

// Lines reports how many lines currently have sharing lists.
func (p *Protocol) Lines() int { return len(p.lines) }

func (p *Protocol) check(hn int) {
	if hn < 0 || hn >= p.nodes {
		panic(fmt.Sprintf("sci: hypernode %d out of range [0,%d)", hn, p.nodes))
	}
}

// CheckInvariants validates protocol consistency: no duplicate sharers,
// the home never appears in its own list, and the buffer sets mirror the
// lists exactly.
func (p *Protocol) CheckInvariants() error {
	// Every list entry must have a buffered copy.
	//simlint:allow determinism any one violation suffices; the walk never touches simulator state or rendered output
	for key, l := range p.lines {
		seen := map[int]bool{}
		if len(l.sharers) == 0 {
			return fmt.Errorf("line %v: empty sharing list should be deleted", key)
		}
		for _, hn := range l.sharers {
			if hn == l.home {
				return fmt.Errorf("line %v: home hn%d appears in its own sharing list", key, hn)
			}
			if seen[hn] {
				return fmt.Errorf("line %v: duplicate sharer hn%d", key, hn)
			}
			seen[hn] = true
			if !p.buffers[hn][key] {
				return fmt.Errorf("line %v: sharer hn%d has no buffered copy", key, hn)
			}
		}
	}
	// Every buffered copy must be on a list.
	for hn, buf := range p.buffers {
		//simlint:allow determinism any one violation suffices; the walk never touches simulator state or rendered output
		for key := range buf {
			l, ok := p.lines[key]
			if !ok {
				return fmt.Errorf("hn%d buffers %v with no sharing list", hn, key)
			}
			found := false
			for _, s := range l.sharers {
				if s == hn {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("hn%d buffers %v but is not on its list", hn, key)
			}
		}
	}
	return nil
}
