package sci

import (
	"testing"
	"testing/quick"

	"spp1000/internal/rng"
	"spp1000/internal/topology"
)

var line = topology.LineKey{Space: 1, Line: 42}

func TestAttachPrependsAtHead(t *testing.T) {
	p := New(4)
	if pos := p.Attach(line, 0, 1); pos != 0 {
		t.Fatalf("first attach position = %d, want 0", pos)
	}
	if pos := p.Attach(line, 0, 2); pos != 0 {
		t.Fatalf("second attach position = %d, want 0 (prepend)", pos)
	}
	want := []int{2, 1}
	got := p.Sharers(line)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("sharers = %v, want %v (head first)", got, want)
	}
}

func TestAttachIdempotent(t *testing.T) {
	p := New(4)
	p.Attach(line, 0, 1)
	p.Attach(line, 0, 2)
	if pos := p.Attach(line, 0, 1); pos != 1 {
		t.Fatalf("re-attach position = %d, want existing position 1", pos)
	}
	if p.ListLength(line) != 2 {
		t.Fatal("re-attach must not grow the list")
	}
}

func TestHomeNeverBuffersItsOwnLine(t *testing.T) {
	p := New(4)
	if pos := p.Attach(line, 0, 0); pos != -1 {
		t.Fatalf("home attach position = %d, want -1", pos)
	}
	if p.InBuffer(0, line) {
		t.Fatal("home must not buffer its own line")
	}
	if p.ListLength(line) != 0 {
		t.Fatal("home attach must not create a list")
	}
}

func TestBufferTracking(t *testing.T) {
	p := New(4)
	p.Attach(line, 0, 3)
	if !p.InBuffer(3, line) {
		t.Fatal("attached hypernode should hold a buffered copy")
	}
	if p.InBuffer(1, line) {
		t.Fatal("unrelated hypernode should not")
	}
}

func TestDetach(t *testing.T) {
	p := New(4)
	p.Attach(line, 0, 1)
	p.Attach(line, 0, 2)
	if !p.Detach(line, 1) {
		t.Fatal("detach should find hn1")
	}
	if p.InBuffer(1, line) {
		t.Fatal("detached copy should leave the buffer")
	}
	if got := p.Sharers(line); len(got) != 1 || got[0] != 2 {
		t.Fatalf("sharers = %v, want [2]", got)
	}
	if p.Detach(line, 1) {
		t.Fatal("double detach should report absence")
	}
	p.Detach(line, 2)
	if p.Lines() != 0 {
		t.Fatal("empty list should be deleted")
	}
}

func TestPurgeWalksWholeList(t *testing.T) {
	p := New(8)
	for hn := 1; hn < 6; hn++ {
		p.Attach(line, 0, hn)
	}
	victims := p.Purge(line)
	if len(victims) != 5 {
		t.Fatalf("purged %d copies, want 5", len(victims))
	}
	// Walk order is head-first: most recent attach first.
	for i, hn := range victims {
		if hn != 5-i {
			t.Fatalf("walk order %v, want head-first [5 4 3 2 1]", victims)
		}
	}
	for hn := 1; hn < 6; hn++ {
		if p.InBuffer(hn, line) {
			t.Fatalf("hn%d still buffers the purged line", hn)
		}
	}
	if p.Stats.PurgedCopies != 5 {
		t.Fatalf("stats.PurgedCopies = %d", p.Stats.PurgedCopies)
	}
}

func TestPurgeExceptKeepsWriterHypernode(t *testing.T) {
	p := New(4)
	p.Attach(line, 0, 1)
	p.Attach(line, 0, 2)
	p.Attach(line, 0, 3)
	victims := p.PurgeExcept(line, 2)
	if len(victims) != 2 {
		t.Fatalf("victims = %v, want 2 entries", victims)
	}
	if !p.InBuffer(2, line) {
		t.Fatal("kept hypernode should retain its buffered copy")
	}
	if got := p.Sharers(line); len(got) != 1 || got[0] != 2 {
		t.Fatalf("sharers = %v, want [2]", got)
	}
	// Keep absent from the list: behaves like a full purge.
	p2 := New(4)
	p2.Attach(line, 0, 1)
	p2.PurgeExcept(line, 3)
	if p2.Lines() != 0 {
		t.Fatal("purge-except with absent keeper should delete the list")
	}
}

func TestPurgeEmpty(t *testing.T) {
	p := New(2)
	if v := p.Purge(line); v != nil {
		t.Fatalf("purging an unshared line returned %v", v)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	p := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range hypernode")
		}
	}()
	p.Attach(line, 0, 5)
}

// Property: invariants hold under arbitrary attach/detach/purge sequences.
func TestInvariantsUnderRandomOps(t *testing.T) {
	prop := func(seed int64) bool {
		rnd := rng.New(uint64(seed))
		p := New(4)
		keys := []topology.LineKey{
			{Space: 1, Line: 1}, {Space: 1, Line: 2}, {Space: 2, Line: 7},
		}
		for i := 0; i < 300; i++ {
			key := keys[rnd.Intn(len(keys))]
			hn := rnd.Intn(4)
			switch rnd.Intn(4) {
			case 0, 1:
				p.Attach(key, 0, hn)
			case 2:
				p.Detach(key, hn)
			case 3:
				if rnd.Intn(2) == 0 {
					p.Purge(key)
				} else {
					p.PurgeExcept(key, hn)
				}
			}
			if err := p.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: list length equals the number of distinct attached sharers
// (excluding the home), regardless of attach order or repetition.
func TestListLengthProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		p := New(8)
		distinct := map[int]bool{}
		for _, r := range raw {
			hn := int(r) % 8
			p.Attach(line, 0, hn)
			if hn != 0 {
				distinct[hn] = true
			}
		}
		return p.ListLength(line) == len(distinct)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
