package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "Procs", "Mflop/s")
	tb.AddRow(1, 29.9)
	tb.AddRow(8, 228.5)
	out := tb.Render()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "228.50") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if tb.Rows() != 2 || tb.Cell(0, 1) != "29.90" {
		t.Fatalf("cell access wrong: %q", tb.Cell(0, 1))
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestSeriesYAt(t *testing.T) {
	s := &Series{Name: "x2"}
	s.Add(1, 1)
	s.Add(2, 4)
	if y, ok := s.YAt(2); !ok || y != 4 {
		t.Fatalf("YAt(2) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(3); ok {
		t.Fatal("YAt(3) should miss")
	}
}

func TestRenderSeriesUnion(t *testing.T) {
	a := &Series{Name: "a"}
	a.Add(1, 10)
	a.Add(2, 20)
	b := &Series{Name: "b"}
	b.Add(2, 200)
	b.Add(3, 300)
	out := Render("Fig", "n", "µs", a, b)
	if !strings.Contains(out, "Fig") || !strings.Contains(out, "300.00") {
		t.Fatalf("missing content:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing gap marker for unmatched x:\n%s", out)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 || Min(xs) != 1 || Max(xs) != 3 {
		t.Fatalf("mean/min/max = %v/%v/%v", Mean(xs), Min(xs), Max(xs))
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
}

func TestSlopeExactLine(t *testing.T) {
	pts := []Point{{0, 1}, {1, 3}, {2, 5}, {3, 7}}
	if s := Slope(pts); s < 1.999 || s > 2.001 {
		t.Fatalf("slope = %v, want 2", s)
	}
	if Slope(pts[:1]) != 0 {
		t.Fatal("degenerate slope should be 0")
	}
	if Slope([]Point{{1, 5}, {1, 9}}) != 0 {
		t.Fatal("vertical line slope should be reported as 0")
	}
}

// Property: slope of y = a*x + b recovered for arbitrary a, b.
func TestSlopeProperty(t *testing.T) {
	prop := func(a, b int8) bool {
		var pts []Point
		for x := 0; x < 5; x++ {
			pts = append(pts, Point{float64(x), float64(a)*float64(x) + float64(b)})
		}
		got := Slope(pts)
		diff := got - float64(a)
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
