// Package stats provides the small numeric and formatting utilities the
// benchmark harness shares: aligned text tables (the paper's tables),
// x/y series (the paper's figures), and summary statistics.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the formatted cell (row, col).
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Point is one sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points (one curve of a figure).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// YAt returns the y value at the given x, or ok=false.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Render formats several series side by side, keyed by x.
func Render(title, xLabel, yLabel string, series ...*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	headers := []string{xLabel}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	tb := NewTable(fmt.Sprintf("(y: %s)", yLabel), headers...)
	for _, x := range xs {
		cells := []interface{}{trimFloat(x)}
		for _, s := range series {
			if y, ok := s.YAt(x); ok {
				cells = append(cells, y)
			} else {
				cells = append(cells, "-")
			}
		}
		tb.AddRow(cells...)
	}
	b.WriteString(tb.Render())
	return b.String()
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the smallest value (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (-Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Slope fits a least-squares line to the series and returns its slope.
func Slope(points []Point) float64 {
	n := float64(len(points))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range points {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		sxy += p.X * p.Y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
