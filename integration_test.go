package spp1000

// Integration tests: the paper's headline claims, each asserted
// end-to-end through the public experiment surface. EXPERIMENTS.md is
// the prose version of this file.

import (
	"testing"

	"spp1000/internal/apps/fem"
	"spp1000/internal/apps/nbody"
	"spp1000/internal/apps/pic"
	"spp1000/internal/apps/ppm"
	"spp1000/internal/microbench"
	"spp1000/internal/stats"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

// Abstract claim: "overhead and latencies of global primitive
// mechanisms, while low in absolute time, are significantly more costly
// than similar functions local to an individual processor ensemble."
func TestAbstractClaim(t *testing.T) {
	// Fork-join: local vs cross-hypernode team.
	local, err := microbench.ForkJoinCost(2, 8, threads.HighLocality)
	if err != nil {
		t.Fatal(err)
	}
	global, err := microbench.ForkJoinCost(2, 8, threads.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	if global <= local {
		t.Errorf("global fork-join (%v) should exceed local (%v)", global, local)
	}
	// "low in absolute time": global stays within a few hundred µs.
	if global.Micros() > 500 {
		t.Errorf("global fork-join (%v) should still be low in absolute time", global)
	}
	// Message passing: local vs global round trip.
	lRT, err := microbench.MessageRoundTrip(1024, false)
	if err != nil {
		t.Fatal(err)
	}
	gRT, err := microbench.MessageRoundTrip(1024, true)
	if err != nil {
		t.Fatal(err)
	}
	ratio := gRT.Micros() / lRT.Micros()
	if ratio < 1.5 || ratio > 4 {
		t.Errorf("global/local message ratio = %.2f, want a small multiple", ratio)
	}
	// Memory: the §6 ~8x global miss penalty.
	p := topology.DefaultParams()
	if r := float64(p.GlobalMissCycles(1)) / float64(p.HypernodeMiss); r < 6 || r > 10 {
		t.Errorf("global/local miss ratio = %.1f, want ≈8", r)
	}
}

// §6: "a single hypernode sustained performance approached that of a
// single head of a CRI C-90" — and crossing at 16 CPUs for PIC.
func TestC90ComparisonClaim(t *testing.T) {
	r16, err := pic.RunShared(pic.Small, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, c90 := pic.C90Reference(pic.Small, 5)
	if r16.Mflops < 0.7*c90 {
		t.Errorf("16-CPU PIC (%.0f) should approach the C90 head (%.0f)", r16.Mflops, c90)
	}
	// FEM: the C90 line stays above the gather-scatter coding at 16.
	f16, err := fem.Run(fem.SmallGrid, fem.GatherScatter, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, c90fem := fem.C90Reference()
	if f16.UsefulMflops >= c90fem {
		t.Errorf("FEM gather-scatter at 16 CPUs (%.0f) stayed below the C90 line (%.0f) in the paper",
			f16.UsefulMflops, c90fem)
	}
}

// §7: "scaling of full applications ranged widely from excellent
// (better than 80%) efficiency to poor where performance was seen to
// degrade between 8 and 16 processors."
func TestScalingRangeClaim(t *testing.T) {
	// Excellent: PPM at 8 CPUs.
	p1, err := ppm.Run(ppm.Table2A, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := ppm.Run(ppm.Table2A, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eff := p8.Mflops / p1.Mflops / 8; eff < 0.8 {
		t.Errorf("PPM efficiency at 8 CPUs = %.2f, want better than 0.8", eff)
	}
	// Degradation between 8 and 16: the FEM dip at 9.
	f8, err := fem.Run(fem.SmallGrid, fem.GatherScatter, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	f9, err := fem.Run(fem.SmallGrid, fem.GatherScatter, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f9.UsefulMflops >= f8.UsefulMflops {
		t.Errorf("FEM should degrade from 8 (%.0f) to 9 (%.0f) CPUs", f8.UsefulMflops, f9.UsefulMflops)
	}
}

// §3.1: "a PVM implementation of an application can achieve almost one
// half the performance of a shared memory implementation."
func TestPVMHalfClaim(t *testing.T) {
	s, err := pic.RunShared(pic.Small, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pic.RunPVM(pic.Small, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	frac := p.Mflops / s.Mflops
	if frac < 0.3 || frac > 0.75 {
		t.Errorf("PVM/shared = %.2f, want ≈0.5", frac)
	}
}

// §5.3.2: tree-code cross-hypernode degradation "between 2 and 7
// percent", and 384 vs 27.5 Mflop/s.
func TestTreeCodeClaims(t *testing.T) {
	w := nbody.CountWorkload(32768, 64, 1)
	r1, err := nbody.Run(w, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Mflops < 20 || r1.Mflops > 35 {
		t.Errorf("single-CPU tree code = %.1f Mflop/s, paper: 27.5", r1.Mflops)
	}
	r8a, err := nbody.Run(w, 8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	r8b, err := nbody.Run(w, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if deg := 1 - r8b.Mflops/r8a.Mflops; deg < -0.02 || deg > 0.1 {
		t.Errorf("cross-hypernode degradation = %.1f%%, paper: 2-7%%", deg*100)
	}
	r16, err := nbody.Run(w, 16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r16.Mflops < 250 || r16.Mflops > 450 {
		t.Errorf("16-CPU tree code = %.0f Mflop/s, paper: 384", r16.Mflops)
	}
}

// Fig. 2 headline numbers as a single sweep.
func TestFig2Claims(t *testing.T) {
	hl, un, err := microbench.ForkJoinSweep(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	var local []stats.Point
	for _, p := range hl.Points {
		if p.X >= 2 && p.X <= 8 {
			local = append(local, p)
		}
	}
	if slope := stats.Slope(local) * 2; slope < 7 || slope > 13 {
		t.Errorf("local pair slope = %.1f µs, paper: ≈10", slope)
	}
	u2, _ := un.YAt(2)
	h2, _ := hl.YAt(2)
	if step := u2 - h2; step < 35 || step > 90 {
		t.Errorf("second-hypernode overhead = %.0f µs, paper: ≈50", step)
	}
}
