// directives demonstrates the §3.2 compiler-directive layer: the same
// skewed parallel loop under static, chunked, and self-scheduled
// iteration assignment, a parallel reduction, and the false-sharing
// penalty the paper warns about.
package main

import (
	"fmt"
	"log"

	"spp1000/internal/directives"
	"spp1000/internal/machine"
	"spp1000/internal/threads"
)

func main() {
	// A loop whose first iterations are 20x heavier (think: the dense
	// center of a particle distribution).
	weight := func(i int) int64 {
		if i < 16 {
			return 40_000
		}
		return 2_000
	}

	fmt.Println("Skewed parallel loop (128 iterations, 8 threads):")
	for _, sched := range []directives.Schedule{
		directives.Static, directives.Chunked, directives.SelfScheduled,
	} {
		m, err := machine.New(machine.Config{Hypernodes: 1})
		if err != nil {
			log.Fatal(err)
		}
		elapsed, err := directives.For(m, directives.Loop{
			Iters: 128, Threads: 8, Place: threads.HighLocality,
			Schedule: sched, Chunk: 2,
		}, func(th *machine.Thread, i int) {
			th.ComputeCycles(weight(i))
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15v %v\n", sched, elapsed)
	}

	// Parallel reduction with thread-private partials.
	m, _ := machine.New(machine.Config{Hypernodes: 1})
	sum, elapsed, err := directives.ReduceSum(m,
		directives.Loop{Iters: 10_000, Threads: 8, Place: threads.HighLocality},
		func(i int) float64 { return float64(i) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nReduceSum(0..9999) = %.0f in %v (8 threads)\n", sum, elapsed)

	// The §3.2 false-sharing warning, quantified.
	shared, private, err := directives.FalseSharing(300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFalse sharing (300 accumulations × 8 threads):\n")
	fmt.Printf("  adjacent shared scalars: %v\n", shared)
	fmt.Printf("  thread-private scalars:  %v  (%.1fx faster)\n",
		private, float64(shared)/float64(private))
	fmt.Println("\n\"Parallel loops can achieve marked performance gains just by")
	fmt.Println(" making scalar variables thread private\" — paper §3.2.")
}
