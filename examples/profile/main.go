// profile demonstrates the CXpa-style instrumentation (§6): it runs a
// deliberately imbalanced team across two hypernodes and prints the
// per-thread busy / memory-stall / synchronization-wait breakdown plus
// the machine's hardware counters — the observability the paper says
// made its optimization work possible.
package main

import (
	"fmt"
	"log"

	"spp1000/internal/cxpa"
	"spp1000/internal/machine"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
	"spp1000/internal/trace"
)

func main() {
	m, err := machine.New(machine.Config{Hypernodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	m.Trace = trace.New()
	// A shared table hosted on hypernode 0: threads on hypernode 1 pay
	// ring latency — visible in their memory-stall column.
	table := m.Alloc("table", topology.NearShared, 0, 0)

	bar := threads.NewBarrier(m, 16, 0)
	_, ths, err := threads.RunTeamThreads(m, 16, threads.HighLocality, func(th *machine.Thread, tid int) {
		for step := 0; step < 4; step++ {
			// Imbalanced compute: later threads carry more work.
			th.ComputeCycles(int64(20_000 + 3_000*tid))
			// Shared-table walk: remote for threads 8-15.
			for i := 0; i < 32; i++ {
				th.Read(table, topology.Addr((tid*32+i)*topology.CacheLineBytes))
			}
			bar.Wait(th)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	profiles := cxpa.Snapshot(ths)
	fmt.Print(cxpa.Render("CXpa profile: 16 threads, 4 barrier-bounded phases", m, profiles))
	fmt.Println()
	fmt.Print(m.Trace.Render("Execution timeline", 96))

	fmt.Println("\nWhat to read off this profile:")
	fmt.Println(" - busy grows with thread id (the injected imbalance);")
	fmt.Println(" - threads 8-15 (hypernode 1) show larger memory stalls (ring latency);")
	fmt.Println(" - early threads burn the imbalance as sync wait at the barrier.")
}
