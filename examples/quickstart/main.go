// Quickstart: build a two-hypernode SPP-1000, fork a 16-thread team,
// time a barrier episode and the memory-access ladder — the minimal tour
// of the simulator's public surface.
package main

import (
	"fmt"
	"log"

	"spp1000/internal/machine"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

func main() {
	// A machine is a deterministic discrete-event simulation: 2
	// hypernodes × 4 functional units × 2 PA-7100s at 100 MHz.
	m, err := machine.New(machine.Config{Hypernodes: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Memory objects carry one of the Convex memory classes.
	shared := m.Alloc("flag", topology.NearShared, 0, 0)

	// Fork a 16-thread team, high-locality placement (first 8 threads
	// fill hypernode 0), and exercise a barrier.
	bar := threads.NewBarrier(m, 16, 0)
	elapsed, err := threads.RunTeam(m, 16, threads.HighLocality, func(th *machine.Thread, tid int) {
		// Touch shared memory: the first read is a miss whose cost
		// depends on where the line lives relative to this CPU.
		rep := th.Read(shared, topology.Addr(tid*64))
		if tid == 0 {
			fmt.Printf("thread %d on %v: first read took %v\n",
				tid, th.CPU, rep.Done)
		}
		// A little simulated work, then synchronize.
		th.ComputeCycles(10_000)
		bar.Wait(th)
	})
	if err != nil {
		log.Fatal(err)
	}
	lifo, lilo := bar.LastEpisode()
	fmt.Printf("fork-to-join: %v\n", elapsed)
	fmt.Printf("barrier last-in/first-out: %v, last-in/last-out: %v\n", lifo, lilo)

	// The ladder of access costs the paper's Section 4 characterizes.
	fmt.Printf("\nlatency parameters (cycles): cache hit %d, local miss %d, "+
		"crossbar %d, global %d (%.1fx)\n",
		m.P.CacheHit, m.P.LocalMiss, m.P.HypernodeMiss,
		m.P.GlobalMissCycles(1),
		float64(m.P.GlobalMissCycles(1))/float64(m.P.HypernodeMiss))
}
