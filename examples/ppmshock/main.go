// ppmshock runs a Sod shock tube with the PPM hydrodynamics kernel on a
// tiled domain, prints the density profile, checks the tiled evolution
// against the single-grid one, and reproduces a Table 2 row.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"spp1000/internal/apps/ppm"
)

func main() {
	const w, h = 128, 16
	d, err := ppm.NewTiled(w, h, 4, 2, ppm.Outflow)
	if err != nil {
		log.Fatal(err)
	}
	g, err := ppm.NewGrid(w, h)
	if err != nil {
		log.Fatal(err)
	}
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			if i < w/2 {
				d.Set(i, j, 1.0, 0, 0, 1.0)
				g.Set(i, j, 1.0, 0, 0, 1.0)
			} else {
				d.Set(i, j, 0.125, 0, 0, 0.1)
				g.Set(i, j, 0.125, 0, 0, 0.1)
			}
		}
	}
	pc := ppm.NewPencil(w + 2*ppm.Pad + h)
	for s := 0; s < 40; s++ {
		d.Step()
		g.Step(ppm.Outflow, 0.4, pc)
	}

	// ASCII density profile along the midline.
	fmt.Println("Sod shock tube density after 40 steps (tiled PPM):")
	var maxDiff float64
	for i := 0; i < w; i += 2 {
		rho, _, _, _ := d.At(i, h/2)
		rg, _, _, _ := g.At(i, h/2)
		if diff := math.Abs(rho - rg); diff > maxDiff {
			maxDiff = diff
		}
		bars := int(rho * 50)
		fmt.Printf("x=%3d rho=%.3f |%s\n", i, rho, strings.Repeat("#", bars))
	}
	fmt.Printf("\nmax |tiled - global| midline density: %.2e\n", maxDiff)
	fmt.Printf("ghost bytes exchanged: %d\n\n", d.ExchangedBytes)

	// One Table 2 configuration on the simulated machine.
	r, err := ppm.Run(ppm.Table2A, 8, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table 2 row: %v -> %.1f Mflop/s (paper: 228.5)\n", r.Config, r.Mflops)
}
