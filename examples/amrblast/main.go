// amrblast runs a cylindrical blast wave with the adaptive-mesh-
// refinement extension: the refinement tracks the expanding shock front,
// and an ASCII map shows which regions carry fine blocks. It closes with
// a timed comparison against the equivalent uniform fine grid.
package main

import (
	"fmt"
	"log"

	"spp1000/internal/apps/amr"
)

func main() {
	d, err := amr.New(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	w := float64(4 * amr.BlockSize)
	d.SetRegion(func(x, y float64) (rho, u, v, p float64) {
		dx, dy := x-w/2, y-w/2
		if dx*dx+dy*dy < 36 {
			return 1, 0, 0, 20 // hot center
		}
		return 1, 0, 0, 0.5
	})

	for s := 0; s < 16; s++ {
		d.Step()
	}
	total, leaves := d.Blocks()
	fmt.Printf("blast after 16 steps: %d leaf blocks (of %d tree nodes), max level %d\n\n",
		leaves, total, d.MaxLevel())

	// Refinement map: the level of the covering leaf, sampled on a
	// coarse raster.
	fmt.Println("refinement map (digit = level of covering leaf):")
	for j := 0; j < 32; j++ {
		for i := 0; i < 32; i++ {
			x := (float64(i) + 0.5) * w / 32
			y := (float64(j) + 0.5) * w / 32
			fmt.Printf("%d", d.LevelAt(x, y))
		}
		fmt.Println()
	}

	// Timed comparison on the simulated machine.
	d2, _ := amr.New(4, 4)
	d2.SetRegion(func(x, y float64) (rho, u, v, p float64) {
		dx, dy := x-w/2, y-w/2
		if dx*dx+dy*dy < 36 {
			return 1, 0, 0, 20
		}
		return 1, 0, 0, 0.5
	})
	r, err := amr.Run(d2, 8, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n8-CPU timed run: %v\n", r)
}
