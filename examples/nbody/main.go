// nbody builds a Plummer sphere, verifies the Barnes–Hut force against
// direct summation, evolves the system a few steps, and reproduces the
// paper's Fig. 8 scaling sweep for one problem size.
package main

import (
	"fmt"
	"log"
	"math"

	"spp1000/internal/apps/nbody"
)

func main() {
	const n = 8192
	b := nbody.NewPlummer(n, 7)
	nbody.SortMorton(b)

	// Accuracy of the tree approximation vs direct summation.
	t := nbody.Build(b)
	var worst float64
	for i := 0; i < 20; i++ {
		ax, ay, az, st := t.Force(i, 0.7, 0.05)
		dx, dy, dz := nbody.DirectForce(b, i, 0.05)
		fm := math.Sqrt(dx*dx + dy*dy + dz*dz)
		em := math.Sqrt((ax-dx)*(ax-dx) + (ay-dy)*(ay-dy) + (az-dz)*(az-dz))
		if fm > 0 && em/fm > worst {
			worst = em / fm
		}
		if i == 0 {
			fmt.Printf("body 0: %d tree nodes visited, %d interactions (vs %d direct)\n",
				st.Visited, st.Interactions, n-1)
		}
	}
	fmt.Printf("worst relative force error at theta=0.7: %.4f\n", worst)

	// A few real dynamical steps.
	for s := 0; s < 3; s++ {
		st := nbody.Step(b, 0.01, 0.7, 0.05)
		fmt.Printf("step %d: %.0f interactions/particle\n",
			s, float64(st.Interactions)/float64(n))
	}

	// Fig. 8 sweep at 32K particles on the simulated machine.
	fmt.Println("\nSPP-1000 scaling, 32768 particles:")
	w := nbody.CountWorkload(32768, 64, 1)
	base, err := nbody.Run(w, 1, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  1 CPU: %.1f Mflop/s (paper: 27.5)\n", base.Mflops)
	for _, cfg := range []struct{ p, hn int }{{8, 1}, {8, 2}, {16, 2}} {
		r, err := nbody.Run(w, cfg.p, cfg.hn, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d CPUs on %d hypernode(s): %6.1f Mflop/s, speedup %.2f\n",
			cfg.p, cfg.hn, r.Mflops, base.Seconds/r.Seconds)
	}
}
