// pic3d runs the paper's beam-plasma PIC problem at reduced size with
// real physics (charge deposition, FFT field solve, leapfrog push),
// prints energy diagnostics over time, then times the same computation
// at paper scale on the simulated SPP-1000 in both programming models.
package main

import (
	"fmt"
	"log"

	"spp1000/internal/apps/pic"
)

func main() {
	// --- Real physics at reduced size: the two-stream/beam-plasma
	// system converts beam kinetic energy into field energy. ---
	sim, err := pic.New(pic.Size{NX: 16, NY: 16, NZ: 16}, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("beam-plasma PIC: %v mesh, %d particles (%d beam)\n",
		sim.Size, len(sim.X), sim.NBeam)
	fmt.Printf("%6s %14s %14s\n", "step", "kinetic", "field")
	for step := 0; step <= 40; step++ {
		if step%8 == 0 {
			fmt.Printf("%6d %14.2f %14.6f\n", step, sim.KineticEnergy(), sim.FieldEnergy())
		}
		if err := sim.Step(); err != nil {
			log.Fatal(err)
		}
	}

	// --- Paper-scale timing on the simulated machine (Fig. 6). ---
	fmt.Println("\nSPP-1000 timing, small problem (32x32x32, 294912 particles):")
	for _, p := range []int{1, 8, 16} {
		shared, err := pic.RunShared(pic.Small, p, 10)
		if err != nil {
			log.Fatal(err)
		}
		pvmr, err := pic.RunPVM(pic.Small, p, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d CPUs: shared %7.1f Mflop/s | PVM %7.1f Mflop/s\n",
			p, shared.Mflops, pvmr.Mflops)
	}
	sec, rate := pic.C90Reference(pic.Small, 500)
	fmt.Printf("  C90 reference: %.0f Mflop/s (%.0f s for 500 steps)\n", rate, sec)
}
