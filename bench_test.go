// Package spp1000 hosts the repository-level benchmarks: one testing.B
// benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the complete artifact on the simulated machine;
// reported custom metrics are simulated-machine quantities (virtual
// seconds, simulated Mflop/s), not host-machine throughput.
package spp1000

import (
	"runtime"
	"testing"

	"spp1000/internal/apps/fem"
	"spp1000/internal/apps/nbody"
	"spp1000/internal/apps/pic"
	"spp1000/internal/apps/ppm"
	"spp1000/internal/experiments"
	"spp1000/internal/load"
	"spp1000/internal/microbench"
	"spp1000/internal/parsim"
	"spp1000/internal/sim"
)

// reportEventRate attaches the events/sec-per-core metric: simulation
// events executed during the benchmark per wall-clock second, divided
// by the host cores available (runtime.GOMAXPROCS) — the engine
// throughput number ROADMAP asks to track, comparable across hosts.
func reportEventRate(b *testing.B, events int64) {
	if sec := b.Elapsed().Seconds(); sec > 0 && events > 0 {
		b.ReportMetric(float64(events)/sec/float64(runtime.GOMAXPROCS(0)), "events/sec-per-core")
	}
}

func opts(b *testing.B) experiments.Options {
	if testing.Short() {
		return experiments.Quick()
	}
	o := experiments.Defaults()
	// Benchmarks iterate; keep single-iteration cost moderate while
	// staying at paper problem sizes (except the 2M-particle N-body
	// count, which is exercised once in TestPaperScaleFig8 / sppbench).
	o.NBodySizes = []int{32768, 262144}
	return o
}

// BenchmarkFig2ForkJoin regenerates Figure 2.
func BenchmarkFig2ForkJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(opts(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Barrier regenerates Figure 3.
func BenchmarkFig3Barrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(opts(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Message regenerates Figure 4.
func BenchmarkFig4Message(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(opts(b)); err != nil {
			b.Fatal(err)
		}
	}
	rt, err := microbench.MessageRoundTrip(1024, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rt.Micros(), "sim-us/global-RT")
}

// BenchmarkTab1C90PIC regenerates Table 1.
func BenchmarkTab1C90PIC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Tab1(opts(b)); err != nil {
			b.Fatal(err)
		}
	}
	sec, rate := pic.C90Reference(pic.Small, 500)
	b.ReportMetric(rate, "sim-C90-Mflops")
	b.ReportMetric(sec, "sim-C90-seconds")
}

// BenchmarkFig6PIC regenerates Figure 6.
func BenchmarkFig6PIC(b *testing.B) {
	o := opts(b)
	ev0 := sim.TotalEvents()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(o); err != nil {
			b.Fatal(err)
		}
	}
	reportEventRate(b, sim.TotalEvents()-ev0)
	r, err := pic.RunShared(pic.Small, 16, o.PICSteps)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.Mflops, "sim-Mflops-16cpu")
}

// BenchmarkFig7FEM regenerates Figure 7.
func BenchmarkFig7FEM(b *testing.B) {
	o := opts(b)
	ev0 := sim.TotalEvents()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(o); err != nil {
			b.Fatal(err)
		}
	}
	reportEventRate(b, sim.TotalEvents()-ev0)
	r, err := fem.Run(fem.SmallGrid, fem.GatherScatter, 16, o.AppSteps)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.UsefulMflops, "sim-useful-Mflops-16cpu")
}

// BenchmarkFig6PIC128 times the paper's largest PIC configuration — the
// full 128-CPU machine the authors did not have — on the monolithic
// serial engine: the single-kernel wall-clock floor the partitioned
// engine is measured against.
func BenchmarkFig6PIC128(b *testing.B) {
	o := opts(b)
	ev0 := sim.TotalEvents()
	var r pic.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = pic.RunShared(pic.Small, 128, o.PICSteps)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportEventRate(b, sim.TotalEvents()-ev0)
	b.ReportMetric(r.Mflops, "sim-Mflops-128cpu")
}

// benchPIC128PDES is BenchmarkFig6PIC128 on the hypernode-partitioned
// engine at a fixed -simpar worker count.
func benchPIC128PDES(b *testing.B, workers int) {
	o := opts(b)
	parsim.SetWorkers(workers)
	defer parsim.SetWorkers(0)
	ev0 := sim.TotalEvents()
	var r pic.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = pic.RunSharedPar(pic.Small, 128, o.PICSteps)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportEventRate(b, sim.TotalEvents()-ev0)
	b.ReportMetric(r.Mflops, "sim-Mflops-128cpu")
}

// BenchmarkFig6PIC128PDES1 is the partitioned PIC at -simpar 1.
func BenchmarkFig6PIC128PDES1(b *testing.B) { benchPIC128PDES(b, 1) }

// BenchmarkFig6PIC128PDES2 is the partitioned PIC at -simpar 2.
func BenchmarkFig6PIC128PDES2(b *testing.B) { benchPIC128PDES(b, 2) }

// BenchmarkFig7FEM128 times the FEM large grid on the full 128-CPU
// machine on the monolithic serial engine (see BenchmarkFig6PIC128).
func BenchmarkFig7FEM128(b *testing.B) {
	o := opts(b)
	ev0 := sim.TotalEvents()
	var r fem.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = fem.Run(fem.LargeGrid, fem.GatherScatter, 128, o.AppSteps)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportEventRate(b, sim.TotalEvents()-ev0)
	b.ReportMetric(r.UsefulMflops, "sim-useful-Mflops-128cpu")
}

// benchFEM128PDES is BenchmarkFig7FEM128 on the hypernode-partitioned
// engine at a fixed -simpar worker count.
func benchFEM128PDES(b *testing.B, workers int) {
	o := opts(b)
	parsim.SetWorkers(workers)
	defer parsim.SetWorkers(0)
	ev0 := sim.TotalEvents()
	var r fem.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = fem.RunPar(fem.LargeGrid, fem.GatherScatter, 128, o.AppSteps)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportEventRate(b, sim.TotalEvents()-ev0)
	b.ReportMetric(r.UsefulMflops, "sim-useful-Mflops-128cpu")
}

// BenchmarkFig7FEM128PDES1 is the partitioned FEM at -simpar 1.
func BenchmarkFig7FEM128PDES1(b *testing.B) { benchFEM128PDES(b, 1) }

// BenchmarkFig7FEM128PDES2 is the partitioned FEM at -simpar 2.
func BenchmarkFig7FEM128PDES2(b *testing.B) { benchFEM128PDES(b, 2) }

// BenchmarkFig8NBody regenerates Figure 8 (32K and 256K particles; run
// cmd/sppbench for the full 2M-particle sweep).
func BenchmarkFig8NBody(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(o); err != nil {
			b.Fatal(err)
		}
	}
	w := nbody.CountWorkload(32768, o.NBodySample, o.Seed)
	r, err := nbody.Run(w, 16, 2, o.AppSteps)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.Mflops, "sim-Mflops-16cpu")
}

// BenchmarkAblations runs the design-choice ablation suite (extension).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablate(opts(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAMR runs the adaptive-mesh-refinement extension.
func BenchmarkAMR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AMR(opts(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTab2PPM regenerates Table 2.
func BenchmarkTab2PPM(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Tab2(o); err != nil {
			b.Fatal(err)
		}
	}
	r, err := ppm.Run(ppm.Table2A, 8, o.AppSteps)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.Mflops, "sim-Mflops-8cpu")
}

// BenchmarkLoadMix measures the sppload op generator: the per-op cost
// of the smooth-WRR class schedule plus the zipfian hot-key draw. The
// generator sits on every load-test worker's critical path, so it must
// stay allocation-free per op — allocs/op here is gated by benchtrend
// like any other benchmark.
func BenchmarkLoadMix(b *testing.B) {
	gen, err := load.NewGenerator(load.DefaultMix(), 8, 1.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	hot := 0
	for i := 0; i < b.N; i++ {
		if gen.Next().Class == load.OpHot {
			hot++
		}
	}
	if b.N >= 100 && (hot < b.N/4 || hot > b.N/2+1) {
		b.Fatalf("hot fraction %d/%d drifted from the 40%% mix", hot, b.N)
	}
}
