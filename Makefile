# Convenience targets for the SPP-1000 reproduction.

GO ?= go

# PR-numbered performance artifacts (bump per PR to track the trajectory).
BENCH_JSON ?= BENCH_8.json
LOAD_JSON ?= LOAD_8.json

.PHONY: all verify build test race bench loadcheck vet doc lint lint-annotations cover faultmatrix checkpoint pdes cluster reproduce quick serve servegw examples clean

all: build vet lint test race

# Tier-1 verification chain: compile, static checks, doc coverage,
# simulator invariants, tests, race tests, the fault matrix, the
# checkpoint resume-exactness gate, the PDES golden-equality gate, the
# sharded-cluster gate, and the load-harness + perf-trend gate.
verify:
	$(GO) build ./... && $(GO) vet ./... && $(GO) run ./cmd/doccheck && $(GO) run ./cmd/simlint && $(GO) test ./... && $(GO) test -race ./... && $(MAKE) faultmatrix && $(MAKE) checkpoint && $(MAKE) pdes && $(MAKE) cluster && $(MAKE) loadcheck

# Fail on undocumented exported symbols of the core packages
# (internal/sim, internal/trace, internal/runner, internal/counters,
# internal/lint, internal/lint/linttest).
doc:
	$(GO) run ./cmd/doccheck

# Enforce the repo invariants: determinism, sim-time, counter-handle,
# context-flow, deps, escape-gated hot paths, lock order, and the
# metrics ledger (see docs/LINT.md).
lint:
	$(GO) run ./cmd/simlint

# CI-facing lint: capture findings as JSON, then replay them as GitHub
# error annotations. The annotate pass owns the exit status, so the
# pipeline fails iff the findings array is non-empty — no pipefail
# dependency. The JSON lands in simlint.json for upload or inspection.
lint-annotations:
	$(GO) run ./cmd/simlint -json > simlint.json || true
	$(GO) run ./cmd/simlint -annotate < simlint.json

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Host goroutines now run independent simulations concurrently
# (internal/runner), so the race detector is part of tier-1 verify.
race:
	$(GO) test -race ./...

# One testing.B benchmark per paper table/figure, plus the kernel-level
# microbenchmarks in internal/sim. The parsed ns/op + allocs/op land in
# $(BENCH_JSON) so the perf trajectory is tracked across PRs.
bench:
	$(GO) test -bench=. -benchmem -run=NONE . ./internal/sim ./internal/counters ./internal/memsys | tee bench.txt
	$(GO) run ./cmd/benchjson < bench.txt > $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# The load-harness + perf-trend gate: start a fresh sppd, drive the
# bounded closed-loop sppload profile against it (exact client-vs-server
# metrics reconciliation; artifact lands in $(LOAD_JSON)), then run the
# benchtrend regression gate over the committed BENCH_*/LOAD_* history.
# Methodology: docs/BENCHMARKS.md.
SPPLOAD_ADDR ?= 127.0.0.1:8187
loadcheck:
	$(GO) build -o /tmp/sppd ./cmd/sppd && $(GO) build -o /tmp/sppload ./cmd/sppload && $(GO) build -o /tmp/benchtrend ./cmd/benchtrend
	/tmp/sppd -addr $(SPPLOAD_ADDR) -par 4 & pid=$$!; \
	/tmp/sppload -addr http://$(SPPLOAD_ADDR) -wait 10s -o $(LOAD_JSON); st=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; exit $$st
	/tmp/benchtrend
	@echo "wrote $(LOAD_JSON)"

cover:
	$(GO) test -cover ./...

# The robustness gate: fault-injected runs (timeouts, failing and
# stalled runs, torn store writes, kill-and-restart) plus the durable
# store's corruption-recovery tests, all under the race detector.
faultmatrix:
	$(GO) test -race -run 'TestFaultInjected|TestJobTimeout|TestPerRequestTimeout|TestKillAndRestart|TestTornStoreWrite|TestMetricsReconcile' ./internal/service
	$(GO) test -race ./internal/store ./internal/faultinject
	$(GO) test -race -run 'TestBackendKillMidSweep|TestPeerFetchFailureRecomputes|TestGatewayForwardFaultEvicts|TestPeerProbeStaleWindowRetry' ./internal/gateway
	$(MAKE) checkpoint

# The checkpoint/resume gate: snapshot encoding round-trips and
# corruption rejection, kernel/coordinator quiescent snapshots, the
# kill-at-every-boundary resume-exactness sweep (byte-identical output
# and exactly equal sim totals at -simpar 1/2/4), and the service's
# checkpointed-job lifecycle — all under the race detector.
checkpoint:
	$(GO) test -race ./internal/snapshot
	$(GO) test -race -run 'TestKernelSnapshot|TestKernelRestore|TestCoordinatorSnapshot|TestCoordinatorRestore' ./internal/sim ./internal/parsim
	$(GO) test -race -run 'TestCheckpoint' ./internal/experiments
	$(GO) test -race -run 'TestDeadline|TestRestartResumes|TestDefaultRunnerCheckpoints' ./internal/service

# The partitioned-engine gate: the parsim coordinator unit tests and
# the serial-vs-PDES golden-equality suite (every experiment at
# -simpar 1/2/4, byte-identical), all under the race detector.
pdes:
	$(GO) test -race ./internal/parsim
	$(GO) test -race -run 'TestPDES' ./internal/experiments

# The sharded-cluster gate: ring placement properties, membership and
# merged metrics, and the gateway-plus-backends end-to-end suite (a
# sweep through sppgw must be byte-identical to one standalone sppd,
# and peer fetch must warm re-homed keys), all under the race detector.
cluster:
	$(GO) test -race ./internal/gateway
	$(GO) test -race -run 'TestBackendIdentity|TestPeerFetch|TestStoreExport' ./internal/service

# Regenerate every table and figure at paper scale (≈1 minute).
reproduce:
	$(GO) run ./cmd/sppbench -exp all

# Reduced problem sizes for CI.
quick:
	$(GO) run ./cmd/sppbench -exp all -quick

# Simulation-as-a-service daemon on a local port; drive it with
#   go run ./cmd/sppctl submit -exp fig6 -quick -wait
SPPD_ADDR ?= 127.0.0.1:8177
serve:
	$(GO) run ./cmd/sppd -addr $(SPPD_ADDR)

# Sharded cluster on local ports: one sppgw gateway and two sppd
# backends that join it. Point sppctl at the gateway:
#   go run ./cmd/sppctl -addr http://127.0.0.1:8178 submit -exp fig6 -quick -wait
SPPGW_ADDR ?= 127.0.0.1:8178
servegw:
	$(GO) build -o /tmp/sppgw ./cmd/sppgw && $(GO) build -o /tmp/sppd ./cmd/sppd
	/tmp/sppgw -addr $(SPPGW_ADDR) & \
	/tmp/sppd -addr 127.0.0.1:8181 -join http://$(SPPGW_ADDR) & \
	/tmp/sppd -addr 127.0.0.1:8182 -join http://$(SPPGW_ADDR) & \
	wait

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pic3d
	$(GO) run ./examples/nbody
	$(GO) run ./examples/ppmshock
	$(GO) run ./examples/profile
	$(GO) run ./examples/directives
	$(GO) run ./examples/amrblast

clean:
	$(GO) clean ./...
