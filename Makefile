# Convenience targets for the SPP-1000 reproduction.

GO ?= go

.PHONY: all build test bench vet cover reproduce quick examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One testing.B benchmark per paper table/figure.
bench:
	$(GO) test -bench=. -benchmem -run=NONE

cover:
	$(GO) test -cover ./...

# Regenerate every table and figure at paper scale (≈1 minute).
reproduce:
	$(GO) run ./cmd/sppbench -exp all

# Reduced problem sizes for CI.
quick:
	$(GO) run ./cmd/sppbench -exp all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pic3d
	$(GO) run ./examples/nbody
	$(GO) run ./examples/ppmshock
	$(GO) run ./examples/profile
	$(GO) run ./examples/directives
	$(GO) run ./examples/amrblast

clean:
	$(GO) clean ./...
